#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace sgb::engine {

namespace {

/// Plans the statement under trace spans shared by every entry point. A SET
/// statement is surfaced through `set` with a null OperatorPtr (entry
/// points without a `set` sink reject it).
Result<OperatorPtr> PlanStatement(const Catalog& catalog,
                                  const std::string& sql,
                                  const sql::PlannerOptions& options,
                                  sql::ExplainMode* mode,
                                  std::optional<sql::SetStatement>* set,
                                  obs::QueryTrace* trace) {
  Result<sql::ParsedStatement> stmt = [&] {
    obs::ScopedSpan span(trace, "parse");
    return sql::ParseStatement(sql);
  }();
  if (!stmt.ok()) return stmt.status();
  if (mode != nullptr) *mode = stmt.value().explain;
  if (stmt.value().set.has_value()) {
    if (set == nullptr) {
      return Status::InvalidArgument(
          "SET statements are only valid through Database::Query");
    }
    *set = std::move(stmt.value().set);
    return OperatorPtr{};
  }
  obs::ScopedSpan span(trace, "plan");
  return sql::PlanQuery(catalog, *stmt.value().select, options);
}

/// Wraps a rendered plan string as a one-column `plan` table, one row per
/// line, so EXPLAIN flows through the normal Query() result path.
Result<Table> PlanTextTable(const std::string& text) {
  Schema schema;
  schema.AddColumn(Column{"plan", DataType::kString, ""});
  Table table(schema);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    SGB_RETURN_IF_ERROR(
        table.Append(Row{Value::Str(text.substr(start, end - start))}));
    start = end + 1;
  }
  return table;
}

/// Drains the plan, recording engine-level metrics and the execute span.
Result<Table> Execute(Operator& root, obs::QueryTrace* trace) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("engine.queries").Add(1);
  obs::ScopedSpan span(trace, "execute");
  ScopedTimer<obs::Histogram> timer(&registry.GetHistogram("engine.query_us"));
  Result<Table> result = Materialize(root);
  if (result.ok()) {
    const double rows = static_cast<double>(result.value().NumRows());
    span.AddAttribute("rows", rows);
    registry.GetCounter("engine.rows_returned")
        .Add(result.value().NumRows());
  } else {
    registry.GetCounter("engine.query_errors").Add(1);
  }
  return result;
}

/// EXPLAIN ANALYZE footer: peak memory plus, when the query spilled, the
/// spill totals (docs/ROBUSTNESS.md "Spill-to-disk").
std::string GovernanceFooter(size_t peak_bytes, uint64_t spill_events,
                             uint64_t spill_bytes) {
  std::string footer = "peak_mem=" + FormatMemoryBytes(peak_bytes) + "\n";
  if (spill_events > 0) {
    footer += "spilled=" + std::to_string(spill_events) + "\n";
    footer += "spill_bytes=" + std::to_string(spill_bytes) + "\n";
  }
  return footer;
}

}  // namespace

Result<OperatorPtr> Database::Prepare(const std::string& sql) const {
  return PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr,
                       nullptr);
}

Result<Table> Database::Query(const std::string& sql,
                              obs::QueryTrace* trace) const {
  sql::ExplainMode mode = sql::ExplainMode::kNone;
  std::optional<sql::SetStatement> set;
  auto plan =
      PlanStatement(catalog_, sql, planner_options_, &mode, &set, trace);
  if (!plan.ok()) return plan.status();
  if (set.has_value()) return ApplySet(*set);

  switch (mode) {
    case sql::ExplainMode::kPlan:
      return PlanTextTable(ExplainPlan(*plan.value()));
    case sql::ExplainMode::kAnalyze: {
      RunStats stats;
      auto result = RunPlan(*plan.value(), trace, &stats);
      if (!result.ok()) return result.status();
      return PlanTextTable(
          ExplainAnalyzePlan(*plan.value()) +
          GovernanceFooter(stats.peak_bytes, stats.spill_events,
                           stats.spill_bytes));
    }
    case sql::ExplainMode::kNone:
      break;
  }
  return RunPlan(*plan.value(), trace, nullptr);
}

Result<std::string> Database::Explain(const std::string& sql) const {
  auto plan = PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr,
                            nullptr);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(*plan.value());
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql,
                                             obs::QueryTrace* trace) const {
  auto plan = PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr,
                            trace);
  if (!plan.ok()) return plan.status();
  RunStats stats;
  auto result = RunPlan(*plan.value(), trace, &stats);
  if (!result.ok()) return result.status();
  return ExplainAnalyzePlan(*plan.value()) +
         GovernanceFooter(stats.peak_bytes, stats.spill_events,
                          stats.spill_bytes);
}

void Database::Cancel() const {
  std::lock_guard<std::mutex> lock(active_->mu);
  for (QueryContext* ctx : active_->contexts) ctx->Cancel();
}

Result<Table> Database::ApplySet(const sql::SetStatement& set) const {
  if (!set.text_value.empty()) {
    // Identifier-valued settings.
    if (set.name == "admission") {
      if (set.text_value == "off") {
        governance_.admission = AdmissionMode::kOff;
      } else if (set.text_value == "queue") {
        governance_.admission = AdmissionMode::kQueue;
      } else if (set.text_value == "shed") {
        governance_.admission = AdmissionMode::kShed;
      } else {
        return Status::InvalidArgument("SET admission: expected queue, "
                                       "shed, or off, got '" +
                                       set.text_value + "'");
      }
    } else {
      return Status::InvalidArgument(
          "SET " + set.name + ": expected an integer value, got '" +
          set.text_value + "'");
    }
    Schema schema;
    schema.AddColumn(Column{"set", DataType::kString, ""});
    Table table(schema);
    SGB_RETURN_IF_ERROR(
        table.Append(Row{Value::Str(set.name + " = " + set.text_value)}));
    return table;
  }
  if (set.value < 0) {
    return Status::InvalidArgument("SET " + set.name +
                                   ": value must be >= 0");
  }
  if (set.name == "timeout") {
    governance_.timeout_ms = set.value;
  } else if (set.name == "memory_budget") {
    governance_.memory_budget_bytes = static_cast<size_t>(set.value);
  } else if (set.name == "parallel") {
    planner_options_.default_sgb_dop = static_cast<int>(set.value);
  } else if (set.name == "spill") {
    governance_.spill_enabled = set.value != 0;
  } else if (set.name == "admission_budget") {
    governance_.admission_budget_bytes = static_cast<size_t>(set.value);
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + set.name +
        "' (expected timeout, memory_budget, parallel, spill, admission, "
        "or admission_budget)");
  }
  Schema schema;
  schema.AddColumn(Column{"set", DataType::kString, ""});
  Table table(schema);
  SGB_RETURN_IF_ERROR(table.Append(
      Row{Value::Str(set.name + " = " + std::to_string(set.value))}));
  return table;
}

Status Database::AdmitQuery(size_t estimate, bool* admitted) const {
  *admitted = false;
  if (governance_.admission == AdmissionMode::kOff) return Status::OK();
  const size_t limit = governance_.admission_budget_bytes != 0
                           ? governance_.admission_budget_bytes
                           : MemoryTracker::EngineGlobal().limit_bytes();
  if (limit == 0) return Status::OK();  // No headroom defined: admit.

  auto& registry = obs::MetricsRegistry::Global();
  std::unique_lock<std::mutex> lock(active_->mu);
  if (estimate > limit) {
    // Larger than the whole headroom: queueing can never help.
    registry.GetCounter("query.shed").Add(1);
    return Status::ResourceExhausted(
        "admission: estimated footprint " + std::to_string(estimate) +
        "B exceeds the engine headroom " + std::to_string(limit) + "B");
  }
  if (active_->admitted_bytes + estimate <= limit) {
    active_->admitted_bytes += estimate;
    *admitted = true;
    return Status::OK();
  }
  if (governance_.admission == AdmissionMode::kShed) {
    registry.GetCounter("query.shed").Add(1);
    return Status::ResourceExhausted(
        "admission: engine headroom exhausted (" +
        std::to_string(active_->admitted_bytes) + "B admitted of " +
        std::to_string(limit) + "B); query shed");
  }

  // Queue mode: wait for enough admitted queries to finish. Releases are
  // signaled through `cv`, but we also poll so a timeout set mid-wait or a
  // release on another Database sharing the engine tracker cannot wedge us.
  registry.GetCounter("query.queued").Add(1);
  const bool has_deadline = governance_.timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(governance_.timeout_ms);
  while (active_->admitted_bytes + estimate > limit) {
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "admission: queued past the session timeout (" +
          std::to_string(governance_.timeout_ms) + "ms)");
    }
    active_->cv.wait_for(lock, std::chrono::milliseconds(10));
  }
  active_->admitted_bytes += estimate;
  *admitted = true;
  return Status::OK();
}

Result<Table> Database::RunPlan(Operator& root, obs::QueryTrace* trace,
                                RunStats* run_stats) const {
  const size_t estimate = root.EstimateFootprintBytes();
  bool admitted = false;
  SGB_RETURN_IF_ERROR(AdmitQuery(estimate, &admitted));

  QueryContext ctx(governance_.memory_budget_bytes);
  if (governance_.timeout_ms > 0) ctx.SetTimeout(governance_.timeout_ms);
  if (governance_.spill_enabled) {
    SpillConfig spill;
    spill.enabled = true;
    spill.directory = governance_.spill_directory;
    ctx.set_spill(spill);
  }
  root.SetQueryContext(&ctx);
  {
    std::lock_guard<std::mutex> lock(active_->mu);
    active_->contexts.push_back(&ctx);
  }

  Result<Table> result = Execute(root, trace);

  {
    std::lock_guard<std::mutex> lock(active_->mu);
    auto& contexts = active_->contexts;
    contexts.erase(std::remove(contexts.begin(), contexts.end(), &ctx),
                   contexts.end());
    if (admitted) {
      active_->admitted_bytes -= std::min(active_->admitted_bytes, estimate);
    }
  }
  if (admitted) active_->cv.notify_all();
  const size_t peak = ctx.memory().peak_bytes();
  if (run_stats != nullptr) {
    run_stats->peak_bytes = peak;
    run_stats->spill_events = ctx.spill_events();
    run_stats->spill_bytes = ctx.spill_bytes();
  }
  // Detach before `ctx` dies: the plan can be re-executed or rendered later.
  root.SetQueryContext(nullptr);

  auto& registry = obs::MetricsRegistry::Global();
  if (ctx.spill_events() > 0) registry.GetCounter("query.spilled").Add(1);
  registry.GetGauge("mem.query.peak").Set(static_cast<double>(peak));
  registry.GetGauge("mem.engine.usage")
      .Set(static_cast<double>(MemoryTracker::EngineGlobal().usage_bytes()));
  registry.GetGauge("mem.engine.peak")
      .Set(static_cast<double>(MemoryTracker::EngineGlobal().peak_bytes()));
  if (!result.ok()) {
    switch (result.status().code()) {
      case Status::Code::kCancelled:
        registry.GetCounter("query.cancelled").Add(1);
        break;
      case Status::Code::kDeadlineExceeded:
        registry.GetCounter("query.timeout").Add(1);
        break;
      case Status::Code::kResourceExhausted:
        registry.GetCounter("query.mem_exceeded").Add(1);
        break;
      default:
        break;
    }
  }
  return result;
}

}  // namespace sgb::engine
