#include "engine/executor.h"

#include "sql/parser.h"
#include "sql/planner.h"

namespace sgb::engine {

Result<OperatorPtr> Database::Prepare(const std::string& sql) const {
  auto stmt = sql::ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  return sql::PlanQuery(catalog_, *stmt.value());
}

Result<Table> Database::Query(const std::string& sql) const {
  auto plan = Prepare(sql);
  if (!plan.ok()) return plan.status();
  return Materialize(*plan.value());
}

Result<std::string> Database::Explain(const std::string& sql) const {
  auto plan = Prepare(sql);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(*plan.value());
}

}  // namespace sgb::engine
