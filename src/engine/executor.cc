#include "engine/executor.h"

#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace sgb::engine {

namespace {

/// Plans the statement under trace spans shared by every entry point.
Result<OperatorPtr> PlanStatement(const Catalog& catalog,
                                  const std::string& sql,
                                  const sql::PlannerOptions& options,
                                  sql::ExplainMode* mode,
                                  obs::QueryTrace* trace) {
  Result<sql::ParsedStatement> stmt = [&] {
    obs::ScopedSpan span(trace, "parse");
    return sql::ParseStatement(sql);
  }();
  if (!stmt.ok()) return stmt.status();
  if (mode != nullptr) *mode = stmt.value().explain;
  obs::ScopedSpan span(trace, "plan");
  return sql::PlanQuery(catalog, *stmt.value().select, options);
}

/// Wraps a rendered plan string as a one-column `plan` table, one row per
/// line, so EXPLAIN flows through the normal Query() result path.
Result<Table> PlanTextTable(const std::string& text) {
  Schema schema;
  schema.AddColumn(Column{"plan", DataType::kString, ""});
  Table table(schema);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    SGB_RETURN_IF_ERROR(
        table.Append(Row{Value::Str(text.substr(start, end - start))}));
    start = end + 1;
  }
  return table;
}

/// Drains the plan, recording engine-level metrics and the execute span.
Result<Table> Execute(Operator& root, obs::QueryTrace* trace) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("engine.queries").Add(1);
  obs::ScopedSpan span(trace, "execute");
  ScopedTimer<obs::Histogram> timer(&registry.GetHistogram("engine.query_us"));
  Result<Table> result = Materialize(root);
  if (result.ok()) {
    const double rows = static_cast<double>(result.value().NumRows());
    span.AddAttribute("rows", rows);
    registry.GetCounter("engine.rows_returned")
        .Add(result.value().NumRows());
  } else {
    registry.GetCounter("engine.query_errors").Add(1);
  }
  return result;
}

}  // namespace

Result<OperatorPtr> Database::Prepare(const std::string& sql) const {
  return PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr);
}

Result<Table> Database::Query(const std::string& sql,
                              obs::QueryTrace* trace) const {
  sql::ExplainMode mode = sql::ExplainMode::kNone;
  auto plan = PlanStatement(catalog_, sql, planner_options_, &mode, trace);
  if (!plan.ok()) return plan.status();

  switch (mode) {
    case sql::ExplainMode::kPlan:
      return PlanTextTable(ExplainPlan(*plan.value()));
    case sql::ExplainMode::kAnalyze: {
      auto result = Execute(*plan.value(), trace);
      if (!result.ok()) return result.status();
      return PlanTextTable(ExplainAnalyzePlan(*plan.value()));
    }
    case sql::ExplainMode::kNone:
      break;
  }
  return Execute(*plan.value(), trace);
}

Result<std::string> Database::Explain(const std::string& sql) const {
  auto plan = PlanStatement(catalog_, sql, planner_options_, nullptr, nullptr);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(*plan.value());
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql,
                                             obs::QueryTrace* trace) const {
  auto plan = PlanStatement(catalog_, sql, planner_options_, nullptr, trace);
  if (!plan.ok()) return plan.status();
  auto result = Execute(*plan.value(), trace);
  if (!result.ok()) return result.status();
  return ExplainAnalyzePlan(*plan.value());
}

}  // namespace sgb::engine
