#ifndef SGB_ENGINE_SYSTEM_TABLES_H_
#define SGB_ENGINE_SYSTEM_TABLES_H_

#include <memory>

#include "engine/catalog.h"
#include "engine/session.h"
#include "obs/query_log.h"

namespace sgb::storage {
class StorageEngine;
}  // namespace sgb::storage

namespace sgb::engine {

/// Registers the virtual system.* introspection tables on `catalog`
/// (docs/OBSERVABILITY.md "System tables"):
///
///   system.metrics        one row per registered metric, live snapshot
///   system.query_log      the bounded ring buffer of recent statements
///   system.operator_stats per-operator counters for recent statements
///   system.tables         catalog listing with row counts and byte sizes
///   system.sessions       one row per live session with its knobs/counters
///
/// Each SELECT against one of these materializes a fresh snapshot, so they
/// compose with filters, aggregates, and SGB like any stored table. Row
/// ordering is deterministic: metrics and tables are name-sorted,
/// query_log/operator_stats are oldest-first, sessions are id-ordered.
void RegisterSystemTables(Catalog* catalog,
                          std::shared_ptr<obs::QueryLog> query_log,
                          std::shared_ptr<SessionRegistry> sessions);

/// Registers system.buffer_pool on a disk-backed Database: one row with
/// the live buffer-pool counters (hits/misses/evictions/writebacks,
/// residency, policy) and storage counters (checkpoints, WAL size,
/// replayed records, crashed flag). See docs/STORAGE.md.
void RegisterStorageSystemTables(
    Catalog* catalog, std::shared_ptr<storage::StorageEngine> storage);

}  // namespace sgb::engine

#endif  // SGB_ENGINE_SYSTEM_TABLES_H_
