#include "engine/operators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "engine/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgb::engine {

// Fires on batch-buffer population — the engine's highest-frequency
// allocation path — so tests can exercise mid-query resource failures.
static FaultSite g_batch_alloc_fault("engine.batch.alloc",
                                     Status::Code::kResourceExhausted);

size_t ApproxRowVectorBytes(const std::vector<Row>& rows) {
  size_t total = rows.capacity() * sizeof(Row);
  for (const Row& row : rows) total += row.capacity() * sizeof(Value);
  return total;
}

bool Operator::NextBatch(RowBatch* out) {
  // Counter object lives for the registry's lifetime, so the reference
  // stays valid across MetricsRegistry::Reset().
  static obs::Counter& batches_counter =
      obs::MetricsRegistry::Global().GetCounter("engine.batches");
  ThrowIfAborted(ctx_);
  {
    Status fault = g_batch_alloc_fault.Check();
    if (!fault.ok()) throw QueryAbort(std::move(fault));
  }
  out->Clear();
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = NextBatchImpl(out);
  stats_.next_ns += ElapsedNs(t0);
  if (ok) {
    ++stats_.batches;
    stats_.rows_produced += out->size();
    batches_counter.Add(1);
  }
  return ok;
}

void Operator::SetQueryContext(QueryContext* ctx) {
  // Settle any outstanding charge against the context it was made on;
  // otherwise a later Open() would release it against the new one.
  if (ctx != ctx_) ReleaseCharge();
  ctx_ = ctx;
  // children() returns const pointers for plan rendering, but children are
  // owned (mutable) nodes; casting back is how the base class threads the
  // context without per-operator plumbing.
  for (const Operator* child : children()) {
    const_cast<Operator*>(child)->SetQueryContext(ctx);
  }
}

void Operator::ChargeMemory(size_t bytes) {
  stats_.peak_memory_bytes =
      std::max<uint64_t>(stats_.peak_memory_bytes, bytes);
  if (ctx_ == nullptr) return;
  if (bytes > charged_bytes_) {
    Status status = ctx_->memory().TryConsume(bytes - charged_bytes_);
    if (!status.ok()) throw QueryAbort(std::move(status));
    charged_bytes_ = bytes;
  } else if (bytes < charged_bytes_) {
    ctx_->memory().Release(charged_bytes_ - bytes);
    charged_bytes_ = bytes;
  }
}

bool Operator::TryChargeMemory(size_t bytes) {
  if (ctx_ == nullptr || bytes <= charged_bytes_) {
    ChargeMemory(bytes);  // peak update and/or release; cannot throw
    return true;
  }
  Status status = ctx_->memory().TryConsume(bytes - charged_bytes_);
  if (!status.ok()) return false;
  charged_bytes_ = bytes;
  stats_.peak_memory_bytes =
      std::max<uint64_t>(stats_.peak_memory_bytes, bytes);
  return true;
}

namespace {

void ThrowIfError(Status status) {
  if (!status.ok()) throw QueryAbort(std::move(status));
}

std::unique_ptr<SpillFile> CreateSpillFileOrThrow(const std::string& dir) {
  Result<std::unique_ptr<SpillFile>> file = SpillFile::Create(dir);
  if (!file.ok()) throw QueryAbort(file.status());
  return std::move(file).value();
}

bool NextOrThrow(SpillFile* file, Row* row) {
  Result<bool> more = file->Next(row);
  if (!more.ok()) throw QueryAbort(more.status());
  return more.value();
}

/// One spill event = one batch of bytes moved to disk (a tee log, a
/// partitioning pass, or a sorted run). Rolls into the QueryContext totals
/// (the `spilled=` EXPLAIN ANALYZE line and the query.spilled metric) and
/// the operator's own `spilled`/`spill_bytes` extras.
void RecordSpillEvent(QueryContext* ctx, uint64_t bytes,
                      OperatorStats* stats) {
  if (ctx != nullptr) {
    ctx->AddSpill(bytes);
    if (ctx->trace() != nullptr) {
      // Marker span (the write itself already happened); it puts each
      // spill on the Chrome-trace timeline with its volume.
      obs::ScopedSpan span(ctx->trace(), "spill.write");
      span.AddAttribute("bytes", static_cast<double>(bytes));
    }
  }
  stats->extra["spilled"] += 1;
  stats->extra["spill_bytes"] += bytes;
  obs::MetricsRegistry::Global().GetCounter("spill.events").Add(1);
}

/// Grace execution produces results partition-major; `seqs` carries each
/// result row's position in the in-memory output order (rows spill with a
/// trailing arrival-sequence column). Permutes `results` back so spilled
/// output is bit-identical to the in-memory run, order included. Stable,
/// because join output repeats one probe sequence per matched build row.
void RestoreSpilledOrder(std::vector<Row>* results,
                         std::vector<uint64_t>* seqs) {
  std::vector<size_t> idx(results->size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return (*seqs)[a] < (*seqs)[b];
  });
  std::vector<Row> ordered;
  ordered.reserve(results->size());
  for (size_t i : idx) ordered.push_back(std::move((*results)[i]));
  *results = std::move(ordered);
  seqs->clear();
  seqs->shrink_to_fit();
}

/// Pops the trailing arrival-sequence column a spilled row was tagged with.
uint64_t PopRowSeq(Row* row) {
  const uint64_t seq = static_cast<uint64_t>(row->back().AsInt());
  row->pop_back();
  return seq;
}

/// Ballpark per-entry overhead of an unordered_map node (bucket slot,
/// next pointer, hash) used by the incremental build-side estimates.
constexpr size_t kMapNodeBytes = 64;

class TableScanOp final : public Operator {
 public:
  TableScanOp(TablePtr table, const std::string& qualifier)
      : table_(std::move(table)),
        schema_(qualifier.empty() ? table_->schema()
                                  : table_->schema().WithQualifier(qualifier)) {
  }
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "TableScan"; }
  std::string label() const override {
    return schema_.size() > 0 && !schema_.column(0).qualifier.empty()
               ? "TableScan " + schema_.column(0).qualifier
               : std::string("TableScan");
  }
  size_t EstimateFootprintBytes() const override {
    return table_->NumRows() *
           (sizeof(Row) + schema_.size() * sizeof(Value));
  }
  void OpenImpl() override { next_ = 0; }
  bool NextImpl(Row* out) override {
    if (next_ >= table_->NumRows()) return false;
    *out = table_->rows()[next_++];
    return true;
  }
  bool NextBatchImpl(RowBatch* out) override {
    const size_t end =
        std::min(table_->NumRows(), next_ + out->capacity());
    for (; next_ < end; ++next_) out->Append(table_->rows()[next_]);
    return !out->empty();
  }

 private:
  TablePtr table_;
  Schema schema_;
  size_t next_ = 0;
};

class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Filter"; }
  std::string label() const override {
    return "Filter " + predicate_->ToString();
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override { child_->Open(); }
  bool NextImpl(Row* out) override {
    while (child_->Next(out)) {
      if (predicate_->Evaluate(*out).ToBool()) return true;
    }
    return false;
  }
  bool NextBatchImpl(RowBatch* out) override {
    // Pull whole child batches and keep the passing rows; an all-filtered
    // batch just pulls the next one, so emitted batches are never empty
    // (though they may be smaller than capacity).
    RowBatch scratch(out->capacity());
    while (out->empty()) {
      if (!child_->NextBatch(&scratch)) return false;
      for (Row& row : scratch.rows()) {
        if (predicate_->Evaluate(row).ToBool()) out->Append(std::move(row));
      }
    }
    return true;
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<Column> output_columns)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(output_columns)) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Project"; }
  std::string label() const override {
    std::string out = "Project [";
    for (size_t i = 0; i < exprs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += exprs_[i]->ToString();
    }
    return out + "]";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override { child_->Open(); }
  bool NextImpl(Row* out) override {
    Row input;
    if (!child_->Next(&input)) return false;
    out->clear();
    out->reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) out->push_back(e->Evaluate(input));
    return true;
  }
  bool NextBatchImpl(RowBatch* out) override {
    RowBatch scratch(out->capacity());
    if (!child_->NextBatch(&scratch)) return false;
    for (const Row& input : scratch.rows()) {
      Row projected;
      projected.reserve(exprs_.size());
      for (const ExprPtr& e : exprs_) projected.push_back(e->Evaluate(input));
      out->Append(std::move(projected));
    }
    return true;
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<Column> group_columns,
                  std::vector<AggregateSpec> aggregates,
                  size_t est_groups)
      : child_(std::move(child)),
        group_exprs_(std::move(group_exprs)),
        aggregates_(std::move(aggregates)),
        est_groups_(est_groups) {
    Schema s(std::move(group_columns));
    for (const AggregateSpec& a : aggregates_) {
      s.AddColumn(Column{a.output_name, AggregateOutputType(a.kind), ""});
    }
    schema_ = std::move(s);
  }
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashAggregate"; }
  std::string label() const override {
    return "HashAggregate (keys=" + std::to_string(group_exprs_.size()) +
           ", aggs=" + std::to_string(aggregates_.size()) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  void OpenImpl() override {
    child_->Open();
    results_.clear();
    result_seqs_.clear();
    next_ = 0;
    results_bytes_ = 0;
    if (SpillEnabled()) {
      OpenWithSpill();
      return;
    }

    GroupMap groups;
    std::vector<Row> key_order;  // deterministic output order
    if (est_groups_ > 0) {
      // Stats-predicted group count: size the table once instead of
      // rehash-growing, and charge the predicted footprint up front so a
      // budget breach surfaces before the build, not mid-growth.
      groups.reserve(est_groups_);
      key_order.reserve(est_groups_);
      ChargeMemory(est_groups_ * PredictedGroupBytes());
    }

    Row row;
    while (child_->Next(&row)) {
      Row key;
      key.reserve(group_exprs_.size());
      for (const ExprPtr& e : group_exprs_) key.push_back(e->Evaluate(row));
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        key_order.push_back(key);
        it->second.states.reserve(aggregates_.size());
        for (const AggregateSpec& a : aggregates_) {
          it->second.states.push_back(CreateAggregateState(a));
        }
      }
      for (auto& state : it->second.states) state->Add(row);
    }

    // Global aggregation emits one row even when the input was empty.
    if (group_exprs_.empty() && groups.empty()) {
      EmitGlobalDefaultRow();
      PublishGroupCount();
      return;
    }

    FinalizeGroups(&groups, key_order);
    PublishGroupCount();
    ChargeMemory(ApproxRowVectorBytes(key_order) +
                 ApproxRowVectorBytes(results_) +
                 key_order.size() * (sizeof(std::unique_ptr<AggregateState>) *
                                     aggregates_.size()));
  }

  bool NextImpl(Row* out) override {
    if (next_ >= results_.size()) return false;
    *out = std::move(results_[next_++]);
    return true;
  }

 private:
  struct GroupEntry {
    std::vector<std::unique_ptr<AggregateState>> states;
  };
  using GroupMap = std::unordered_map<Row, GroupEntry, RowHash, RowEq>;

  Row EvalKey(const Row& row) const {
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Evaluate(row));
    return key;
  }

  /// Estimated bytes one group adds to the hash table — the per-insert
  /// delta of AddToGroups with the key at its natural capacity. Used to
  /// pre-charge the predicted footprint when a stats estimate exists.
  size_t PredictedGroupBytes() const {
    return 2 * (sizeof(Row) + group_exprs_.size() * sizeof(Value)) +
           kMapNodeBytes +
           aggregates_.size() * (sizeof(std::unique_ptr<AggregateState>) + 48);
  }

  /// Publishes actual groups beside the plan-time estimate so estimate
  /// drift shows up in EXPLAIN ANALYZE and system.operator_stats.
  void PublishGroupCount() {
    mutable_stats().extra["groups"] = results_.size();
    if (est_groups_ > 0) mutable_stats().extra["est_groups"] = est_groups_;
  }

  /// Feeds `row` into its group (creating states on first sight) and
  /// returns the estimated bytes the insertion added to the hash table.
  size_t AddToGroups(GroupMap* groups, std::vector<Row>* key_order, Row key,
                     const Row& row) const {
    size_t delta = 0;
    auto [it, inserted] = groups->try_emplace(std::move(key));
    if (inserted) {
      key_order->push_back(it->first);
      it->second.states.reserve(aggregates_.size());
      for (const AggregateSpec& a : aggregates_) {
        it->second.states.push_back(CreateAggregateState(a));
      }
      delta = 2 * (sizeof(Row) + it->first.capacity() * sizeof(Value)) +
              kMapNodeBytes +
              aggregates_.size() *
                  (sizeof(std::unique_ptr<AggregateState>) + 48);
    }
    for (auto& state : it->second.states) state->Add(row);
    return delta;
  }

  void EmitGlobalDefaultRow() {
    Row out;
    for (const AggregateSpec& a : aggregates_) {
      out.push_back(CreateAggregateState(a)->Finalize());
    }
    results_.push_back(std::move(out));
  }

  void FinalizeGroups(GroupMap* groups, const std::vector<Row>& key_order) {
    results_.reserve(results_.size() + key_order.size());
    for (const Row& key : key_order) {
      Row out;
      out.reserve(key.size() + aggregates_.size());
      out.insert(out.end(), key.begin(), key.end());
      for (const auto& state : (*groups)[key].states) {
        out.push_back(state->Finalize());
      }
      results_.push_back(std::move(out));
    }
  }

  /// Grace aggregation (docs/ROBUSTNESS.md "Spill-to-disk"): aggregate in
  /// memory while teeing the raw input to a spill log; on a budget breach,
  /// drop the hash table, partition the log plus the remaining input by
  /// group-key hash, and re-aggregate each partition — recursively
  /// repartitioning partitions that still do not fit. Spilled rows carry a
  /// trailing arrival-sequence column so the finalized results can be
  /// restored to first-appearance order, keeping spilled output
  /// bit-identical to the in-memory run. AggregateState is deliberately
  /// opaque (Add/Finalize only), which is why raw rows spill rather than
  /// partial states.
  void OpenWithSpill() {
    QueryContext* ctx = query_context();
    const SpillConfig& cfg = ctx->spill();
    GroupMap groups;
    std::vector<Row> key_order;
    if (est_groups_ > 0) groups.reserve(est_groups_);
    size_t mem_estimate = 0;
    uint64_t next_seq = 0;
    std::unique_ptr<SpillFile> tee;       // replay log; read only on breach
    std::unique_ptr<SpillPartitionSet> overflow;
    Row row;
    while (child_->Next(&row)) {
      Row key = EvalKey(row);
      const uint64_t row_seq = next_seq++;
      if (overflow != nullptr) {
        row.push_back(Value::Int(static_cast<int64_t>(row_seq)));
        ThrowIfError(overflow->Add(RowHash{}(key), row));
        continue;
      }
      if (tee == nullptr) tee = CreateSpillFileOrThrow(cfg.directory);
      ThrowIfError(tee->Append(row));
      mem_estimate += AddToGroups(&groups, &key_order, std::move(key), row);
      if (TryChargeMemory(mem_estimate)) continue;
      // Budget breached: fall back to grace aggregation. The tee log
      // replays the input consumed so far, in arrival order.
      groups.clear();
      key_order.clear();
      ChargeMemory(0);
      ThrowIfError(tee->FinishWrites());
      RecordSpillEvent(ctx, tee->bytes(), &mutable_stats());
      overflow = std::make_unique<SpillPartitionSet>(cfg.fanout, /*level=*/0,
                                                     cfg.directory);
      Row replay;
      uint64_t replay_seq = 0;
      while (NextOrThrow(tee.get(), &replay)) {
        const size_t hash = RowHash{}(EvalKey(replay));
        replay.push_back(Value::Int(static_cast<int64_t>(replay_seq++)));
        ThrowIfError(overflow->Add(hash, replay));
      }
      tee.reset();
    }
    if (overflow == nullptr) {  // everything fit after all
      tee.reset();
      if (group_exprs_.empty() && groups.empty()) {
        EmitGlobalDefaultRow();
      } else {
        FinalizeGroups(&groups, key_order);
      }
      PublishGroupCount();
      ChargeMemory(ApproxRowVectorBytes(results_));
      return;
    }
    ThrowIfError(overflow->FinishWrites());
    RecordSpillEvent(ctx, overflow->bytes(), &mutable_stats());
    for (size_t i = 0; i < overflow->fanout(); ++i) {
      std::unique_ptr<SpillFile> part = overflow->TakePartition(i);
      if (part != nullptr) ProcessPartition(std::move(part), /*level=*/1);
    }
    overflow.reset();
    RestoreSpilledOrder(&results_, &result_seqs_);
    if (group_exprs_.empty() && results_.empty()) EmitGlobalDefaultRow();
    PublishGroupCount();
    results_bytes_ = ApproxRowVectorBytes(results_);
    ChargeMemory(results_bytes_);
  }

  /// Aggregates one spilled partition in memory, repartitioning at the
  /// next hash-salt level when it still does not fit. `level` is the salt
  /// for that next repartition.
  void ProcessPartition(std::unique_ptr<SpillFile> file, int level) {
    CheckAbort();
    QueryContext* ctx = query_context();
    const SpillConfig& cfg = ctx->spill();
    GroupMap groups;
    std::vector<Row> key_order;
    // First-appearance sequence per group: partition files preserve arrival
    // order (the tee replays in order and later adds append in order), so
    // the first row seen for a key carries the group's global rank.
    std::vector<uint64_t> seq_order;
    size_t mem_estimate = 0;
    ThrowIfError(file->Rewind());
    Row row;
    bool fits = true;
    while (NextOrThrow(file.get(), &row)) {
      const uint64_t seq = PopRowSeq(&row);
      const size_t groups_before = key_order.size();
      mem_estimate += AddToGroups(&groups, &key_order, EvalKey(row), row);
      if (key_order.size() > groups_before) seq_order.push_back(seq);
      if (!TryChargeMemory(results_bytes_ + mem_estimate)) {
        fits = false;
        break;
      }
    }
    if (fits) {
      FinalizeGroups(&groups, key_order);
      result_seqs_.insert(result_seqs_.end(), seq_order.begin(),
                          seq_order.end());
      groups.clear();
      results_bytes_ = ApproxRowVectorBytes(results_);
      ChargeMemory(results_bytes_);
      return;
    }
    groups.clear();
    key_order.clear();
    ChargeMemory(results_bytes_);
    if (level >= cfg.max_depth) {
      throw QueryAbort(Status::ResourceExhausted(
          "spill: aggregate partition exceeds the memory budget at max "
          "recursion depth " +
          std::to_string(cfg.max_depth)));
    }
    ThrowIfError(file->Rewind());
    auto children = std::make_unique<SpillPartitionSet>(cfg.fanout, level,
                                                        cfg.directory);
    while (NextOrThrow(file.get(), &row)) {
      ThrowIfError(children->Add(RowHash{}(EvalKey(row)), row));
    }
    ThrowIfError(children->FinishWrites());
    RecordSpillEvent(ctx, children->bytes(), &mutable_stats());
    // Rows whose key hashes are all identical land in one child at every
    // level; recursing on them would never terminate.
    for (size_t i = 0; i < children->fanout(); ++i) {
      if (children->partition_rows(i) == file->rows()) {
        throw QueryAbort(Status::ResourceExhausted(
            "spill: aggregate partition with identical key hashes cannot "
            "be repartitioned and exceeds the memory budget"));
      }
    }
    file.reset();  // delete the parent temp file before recursing
    for (size_t i = 0; i < children->fanout(); ++i) {
      std::unique_ptr<SpillFile> part = children->TakePartition(i);
      if (part != nullptr) ProcessPartition(std::move(part), level + 1);
    }
  }

  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  Schema schema_;
  size_t est_groups_ = 0;  ///< stats-predicted group count (0 = unknown)
  std::vector<Row> results_;
  /// Spilled mode only: in-memory output rank of each results_ row,
  /// consumed by RestoreSpilledOrder.
  std::vector<uint64_t> result_seqs_;
  size_t next_ = 0;
  size_t results_bytes_ = 0;
};

/// Sort-based GROUP BY: materializes the input, sorts row indices by group
/// key, aggregates adjacent runs, then emits groups in first-appearance
/// order — bit-identical output to HashAggregateOp, so the planner's
/// hash-vs-sort choice never changes results. Chosen by the cost model when
/// the predicted group count approaches the row count (the hash table's
/// per-group node overhead dominates there; a sort touches each row once
/// with no per-group allocations).
class SortAggregateOp final : public Operator {
 public:
  SortAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<Column> group_columns,
                  std::vector<AggregateSpec> aggregates)
      : child_(std::move(child)),
        group_exprs_(std::move(group_exprs)),
        aggregates_(std::move(aggregates)) {
    Schema s(std::move(group_columns));
    for (const AggregateSpec& a : aggregates_) {
      s.AddColumn(Column{a.output_name, AggregateOutputType(a.kind), ""});
    }
    schema_ = std::move(s);
  }
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "SortAggregate"; }
  std::string label() const override {
    return "SortAggregate (keys=" + std::to_string(group_exprs_.size()) +
           ", aggs=" + std::to_string(aggregates_.size()) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  void OpenImpl() override {
    child_->Open();
    results_.clear();
    next_ = 0;

    std::vector<Row> input;
    std::vector<Row> keys;
    Row row;
    while (child_->Next(&row)) {
      Row key;
      key.reserve(group_exprs_.size());
      for (const ExprPtr& e : group_exprs_) key.push_back(e->Evaluate(row));
      keys.push_back(std::move(key));
      input.push_back(std::move(row));
    }
    ChargeMemory(ApproxRowVectorBytes(input) + ApproxRowVectorBytes(keys));

    if (group_exprs_.empty() && input.empty()) {
      Row out;
      for (const AggregateSpec& a : aggregates_) {
        out.push_back(CreateAggregateState(a)->Finalize());
      }
      results_.push_back(std::move(out));
      mutable_stats().extra["groups"] = results_.size();
      return;
    }

    std::vector<size_t> order(input.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&keys](size_t a, size_t b) {
                       const Row& ka = keys[a];
                       const Row& kb = keys[b];
                       for (size_t i = 0; i < ka.size(); ++i) {
                         const int c = Value::Compare(ka[i], kb[i]);
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });

    // Aggregate each equal-key run; a stable sort makes the run's first
    // element the group's earliest arrival, so sorting finished groups by
    // that index restores first-appearance order.
    std::vector<std::pair<size_t, Row>> finished;
    size_t run_start = 0;
    while (run_start < order.size()) {
      CheckAbort();
      size_t run_end = run_start + 1;
      while (run_end < order.size() &&
             RowEq{}(keys[order[run_start]], keys[order[run_end]])) {
        ++run_end;
      }
      std::vector<std::unique_ptr<AggregateState>> states;
      states.reserve(aggregates_.size());
      for (const AggregateSpec& a : aggregates_) {
        states.push_back(CreateAggregateState(a));
      }
      size_t first = order[run_start];
      for (size_t i = run_start; i < run_end; ++i) {
        first = std::min(first, order[i]);
        for (auto& state : states) state->Add(input[order[i]]);
      }
      Row out;
      const Row& key = keys[order[run_start]];
      out.reserve(key.size() + aggregates_.size());
      out.insert(out.end(), key.begin(), key.end());
      for (auto& state : states) out.push_back(state->Finalize());
      finished.emplace_back(first, std::move(out));
      run_start = run_end;
    }
    std::sort(finished.begin(), finished.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    results_.reserve(finished.size());
    for (auto& [first, out] : finished) results_.push_back(std::move(out));
    mutable_stats().extra["groups"] = results_.size();
    ChargeMemory(ApproxRowVectorBytes(input) + ApproxRowVectorBytes(keys) +
                 ApproxRowVectorBytes(results_));
  }

  bool NextImpl(Row* out) override {
    if (next_ >= results_.size()) return false;
    *out = std::move(results_[next_++]);
    return true;
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  Schema schema_;
  std::vector<Row> results_;
  size_t next_ = 0;
};

class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        schema_(Schema::Concat(left_->schema(), right_->schema())) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashJoin"; }
  std::string label() const override {
    std::string out = "HashJoin on ";
    for (size_t i = 0; i < left_keys_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
    }
    return out;
  }
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

  void OpenImpl() override {
    // Build side: right input.
    right_->Open();
    build_.clear();
    spilled_mode_ = false;
    results_.clear();
    result_seqs_.clear();
    next_ = 0;
    results_bytes_ = 0;
    if (SpillEnabled()) {
      OpenWithSpill();
      return;
    }
    Row row;
    while (right_->Next(&row)) {
      Row key;
      if (!EvalKeyInto(right_keys_, row, &key)) continue;  // NULLs never join
      build_[std::move(key)].push_back(row);
    }
    size_t build_rows = 0;
    size_t build_bytes = 0;
    for (const auto& [key, rows] : build_) {
      build_rows += rows.size();
      build_bytes += key.capacity() * sizeof(Value) + ApproxRowVectorBytes(rows);
    }
    mutable_stats().extra["build_rows"] = build_rows;
    ChargeMemory(build_bytes);
    left_->Open();
    matches_ = nullptr;
    match_index_ = 0;
  }

  bool NextImpl(Row* out) override {
    if (spilled_mode_) {
      if (next_ >= results_.size()) return false;
      *out = std::move(results_[next_++]);
      return true;
    }
    while (true) {
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        *out = probe_row_;
        const Row& right_row = (*matches_)[match_index_++];
        out->insert(out->end(), right_row.begin(), right_row.end());
        return true;
      }
      matches_ = nullptr;
      if (!left_->Next(&probe_row_)) return false;
      Row key;
      if (!EvalKeyInto(left_keys_, probe_row_, &key)) continue;
      const auto it = build_.find(key);
      if (it == build_.end()) continue;
      matches_ = &it->second;
      match_index_ = 0;
    }
  }

 private:
  using BuildMap = std::unordered_map<Row, std::vector<Row>, RowHash, RowEq>;

  /// Evaluates the key expressions into `key`; false when any component is
  /// NULL (such rows never join on either side).
  static bool EvalKeyInto(const std::vector<ExprPtr>& exprs, const Row& row,
                          Row* key) {
    key->clear();
    key->reserve(exprs.size());
    for (const ExprPtr& e : exprs) key->push_back(e->Evaluate(row));
    for (const Value& v : *key) {
      if (v.is_null()) return false;
    }
    return true;
  }

  /// Grace hash join: build in memory while teeing build rows to a spill
  /// log; on a budget breach, partition both inputs by key hash with the
  /// same routing so each partition pair joins independently, recursively
  /// repartitioning build partitions that still do not fit. Probe rows
  /// spill with a trailing arrival-sequence column; the materialized
  /// output is restored to probe order before streaming, so spilled output
  /// is bit-identical to the in-memory run.
  void OpenWithSpill() {
    QueryContext* ctx = query_context();
    const SpillConfig& cfg = ctx->spill();
    size_t mem_estimate = 0;
    std::unique_ptr<SpillFile> tee;
    std::unique_ptr<SpillPartitionSet> right_parts;
    Row row;
    Row key;
    while (right_->Next(&row)) {
      if (!EvalKeyInto(right_keys_, row, &key)) continue;
      const size_t hash = RowHash{}(key);
      if (right_parts != nullptr) {
        ThrowIfError(right_parts->Add(hash, row));
        continue;
      }
      if (tee == nullptr) tee = CreateSpillFileOrThrow(cfg.directory);
      ThrowIfError(tee->Append(row));
      mem_estimate += 2 * sizeof(Row) +
                      (key.capacity() + row.capacity()) * sizeof(Value) +
                      kMapNodeBytes;
      build_[key].push_back(row);
      if (TryChargeMemory(mem_estimate)) continue;
      // Budget breached: drop the build table; the tee log replays the
      // build rows consumed so far.
      build_.clear();
      ChargeMemory(0);
      ThrowIfError(tee->FinishWrites());
      RecordSpillEvent(ctx, tee->bytes(), &mutable_stats());
      right_parts = std::make_unique<SpillPartitionSet>(
          cfg.fanout, /*level=*/0, cfg.directory);
      Row replay;
      while (NextOrThrow(tee.get(), &replay)) {
        EvalKeyInto(right_keys_, replay, &key);  // teed rows are non-NULL
        ThrowIfError(right_parts->Add(RowHash{}(key), replay));
      }
      tee.reset();
    }
    if (right_parts == nullptr) {  // build side fit: stream-probe as usual
      tee.reset();
      size_t build_rows = 0;
      for (const auto& [k, rows] : build_) build_rows += rows.size();
      mutable_stats().extra["build_rows"] = build_rows;
      left_->Open();
      matches_ = nullptr;
      match_index_ = 0;
      return;
    }
    ThrowIfError(right_parts->FinishWrites());
    // Partition the probe side with the same level-0 routing, so rows that
    // can join always meet in the same partition pair.
    left_->Open();
    auto left_parts = std::make_unique<SpillPartitionSet>(
        cfg.fanout, /*level=*/0, cfg.directory);
    uint64_t probe_seq = 0;
    while (left_->Next(&row)) {
      if (!EvalKeyInto(left_keys_, row, &key)) continue;
      row.push_back(Value::Int(static_cast<int64_t>(probe_seq++)));
      ThrowIfError(left_parts->Add(RowHash{}(key), row));
    }
    ThrowIfError(left_parts->FinishWrites());
    RecordSpillEvent(ctx, right_parts->bytes() + left_parts->bytes(),
                     &mutable_stats());
    spilled_mode_ = true;
    for (size_t i = 0; i < right_parts->fanout(); ++i) {
      ProcessJoinPartition(right_parts->TakePartition(i),
                           left_parts->TakePartition(i), /*level=*/1);
    }
    RestoreSpilledOrder(&results_, &result_seqs_);
    results_bytes_ = ApproxRowVectorBytes(results_);
    ChargeMemory(results_bytes_);
  }

  /// Joins one partition pair: build the right file in memory and stream
  /// the left file against it, or repartition both files at the next hash
  /// level when the build side still does not fit.
  void ProcessJoinPartition(std::unique_ptr<SpillFile> right_file,
                            std::unique_ptr<SpillFile> left_file, int level) {
    if (right_file == nullptr || left_file == nullptr) return;  // no matches
    CheckAbort();
    QueryContext* ctx = query_context();
    const SpillConfig& cfg = ctx->spill();
    BuildMap build;
    size_t mem_estimate = 0;
    ThrowIfError(right_file->Rewind());
    Row row;
    Row key;
    bool fits = true;
    while (NextOrThrow(right_file.get(), &row)) {
      EvalKeyInto(right_keys_, row, &key);
      mem_estimate += 2 * sizeof(Row) +
                      (key.capacity() + row.capacity()) * sizeof(Value) +
                      kMapNodeBytes;
      build[key].push_back(row);
      if (!TryChargeMemory(results_bytes_ + mem_estimate)) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      build.clear();
      ChargeMemory(results_bytes_);
      if (level >= cfg.max_depth) {
        throw QueryAbort(Status::ResourceExhausted(
            "spill: join build partition exceeds the memory budget at max "
            "recursion depth " +
            std::to_string(cfg.max_depth)));
      }
      ThrowIfError(right_file->Rewind());
      auto right_children = std::make_unique<SpillPartitionSet>(
          cfg.fanout, level, cfg.directory);
      while (NextOrThrow(right_file.get(), &row)) {
        EvalKeyInto(right_keys_, row, &key);
        ThrowIfError(right_children->Add(RowHash{}(key), row));
      }
      ThrowIfError(right_children->FinishWrites());
      for (size_t i = 0; i < right_children->fanout(); ++i) {
        if (right_children->partition_rows(i) == right_file->rows()) {
          throw QueryAbort(Status::ResourceExhausted(
              "spill: join build partition with identical key hashes "
              "cannot be repartitioned and exceeds the memory budget"));
        }
      }
      auto left_children = std::make_unique<SpillPartitionSet>(
          cfg.fanout, level, cfg.directory);
      ThrowIfError(left_file->Rewind());
      while (NextOrThrow(left_file.get(), &row)) {
        EvalKeyInto(left_keys_, row, &key);
        ThrowIfError(left_children->Add(RowHash{}(key), row));
      }
      ThrowIfError(left_children->FinishWrites());
      RecordSpillEvent(ctx, right_children->bytes() + left_children->bytes(),
                       &mutable_stats());
      right_file.reset();
      left_file.reset();
      for (size_t i = 0; i < right_children->fanout(); ++i) {
        ProcessJoinPartition(right_children->TakePartition(i),
                             left_children->TakePartition(i), level + 1);
      }
      return;
    }
    ThrowIfError(left_file->Rewind());
    while (NextOrThrow(left_file.get(), &row)) {
      const uint64_t seq = PopRowSeq(&row);
      EvalKeyInto(left_keys_, row, &key);
      const auto it = build.find(key);
      if (it == build.end()) continue;
      for (const Row& right_row : it->second) {
        Row joined = row;
        joined.insert(joined.end(), right_row.begin(), right_row.end());
        results_.push_back(std::move(joined));
        result_seqs_.push_back(seq);
      }
    }
    build.clear();
    results_bytes_ = ApproxRowVectorBytes(results_);
    ChargeMemory(results_bytes_);
  }

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  Schema schema_;
  BuildMap build_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  // Spilled-mode output: materialized join result, restored to probe order.
  bool spilled_mode_ = false;
  std::vector<Row> results_;
  /// Spilled mode only: probe sequence of each results_ row, consumed by
  /// RestoreSpilledOrder.
  std::vector<uint64_t> result_seqs_;
  size_t next_ = 0;
  size_t results_bytes_ = 0;
};

class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(std::move(predicate)),
        schema_(Schema::Concat(left_->schema(), right_->schema())) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "NestedLoopJoin"; }
  std::string label() const override {
    return predicate_ == nullptr
               ? std::string("NestedLoopJoin (cross)")
               : "NestedLoopJoin " + predicate_->ToString();
  }
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

  void OpenImpl() override {
    right_->Open();
    right_rows_.clear();
    Row row;
    while (right_->Next(&row)) right_rows_.push_back(row);
    ChargeMemory(ApproxRowVectorBytes(right_rows_));
    left_->Open();
    have_left_ = false;
    right_index_ = 0;
  }

  bool NextImpl(Row* out) override {
    while (true) {
      if (!have_left_) {
        if (!left_->Next(&left_row_)) return false;
        have_left_ = true;
        right_index_ = 0;
      }
      while (right_index_ < right_rows_.size()) {
        const Row& r = right_rows_[right_index_++];
        Row joined = left_row_;
        joined.insert(joined.end(), r.begin(), r.end());
        if (predicate_ == nullptr || predicate_->Evaluate(joined).ToBool()) {
          *out = std::move(joined);
          return true;
        }
      }
      have_left_ = false;
    }
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  size_t right_index_ = 0;
};

class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Sort"; }
  std::string label() const override {
    std::string out = "Sort [";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys_[i].expr->ToString();
      out += keys_[i].ascending ? " asc" : " desc";
    }
    return out + "]";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  void OpenImpl() override {
    child_->Open();
    rows_.clear();
    next_ = 0;
    runs_.clear();
    heads_.clear();
    merging_ = false;
    if (SpillEnabled()) {
      OpenWithSpill();
      return;
    }
    Row row;
    while (child_->Next(&row)) rows_.push_back(std::move(row));
    ChargeMemory(ApproxRowVectorBytes(rows_));
    SortRows();
  }

  bool NextImpl(Row* out) override {
    if (merging_) {
      // K-way merge, linear scan over the run heads (run counts are small).
      // Strict less-than keeps the earliest run on ties; runs are
      // consecutive input segments sorted stably, so the merged order is
      // bit-identical to the in-memory stable sort.
      int best = -1;
      for (size_t i = 0; i < heads_.size(); ++i) {
        if (!heads_[i].has_value()) continue;
        if (best < 0 || RowLess(*heads_[i], *heads_[best])) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) return false;
      *out = std::move(*heads_[best]);
      AdvanceRun(static_cast<size_t>(best));
      return true;
    }
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

 private:
  bool RowLess(const Row& a, const Row& b) const {
    for (const SortKey& k : keys_) {
      const int c =
          Value::Compare(k.expr->Evaluate(a), k.expr->Evaluate(b));
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  }

  void SortRows() {
    std::stable_sort(
        rows_.begin(), rows_.end(),
        [this](const Row& a, const Row& b) { return RowLess(a, b); });
  }

  /// External sort: accumulate rows until the budget pushes back, flush
  /// them as a stably sorted run, and merge the runs lazily in NextImpl.
  void OpenWithSpill() {
    const SpillConfig& cfg = query_context()->spill();
    size_t mem_estimate = 0;
    Row row;
    while (child_->Next(&row)) {
      mem_estimate += sizeof(Row) + row.capacity() * sizeof(Value);
      rows_.push_back(std::move(row));
      if (TryChargeMemory(mem_estimate)) continue;
      SortRows();
      WriteRun(cfg);
      rows_.clear();
      mem_estimate = 0;
      ChargeMemory(0);
    }
    if (runs_.empty()) {  // everything fit: plain in-memory sort
      ChargeMemory(ApproxRowVectorBytes(rows_));
      SortRows();
      return;
    }
    if (!rows_.empty()) {
      SortRows();
      WriteRun(cfg);
      rows_.clear();
      ChargeMemory(0);
    }
    mutable_stats().extra["runs"] = runs_.size();
    heads_.resize(runs_.size());
    for (size_t i = 0; i < runs_.size(); ++i) AdvanceRun(i);
    merging_ = true;
  }

  void WriteRun(const SpillConfig& cfg) {
    CheckAbort();
    std::unique_ptr<SpillFile> run = CreateSpillFileOrThrow(cfg.directory);
    for (const Row& row : rows_) ThrowIfError(run->Append(row));
    ThrowIfError(run->FinishWrites());
    RecordSpillEvent(query_context(), run->bytes(), &mutable_stats());
    runs_.push_back(std::move(run));
  }

  void AdvanceRun(size_t i) {
    Row row;
    if (NextOrThrow(runs_[i].get(), &row)) {
      heads_[i] = std::move(row);
    } else {
      heads_[i].reset();
    }
  }

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t next_ = 0;
  // Spilled-mode state: sorted runs and their current merge heads.
  std::vector<std::unique_ptr<SpillFile>> runs_;
  std::vector<std::optional<Row>> heads_;
  bool merging_ = false;
};

class LimitOp final : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Limit"; }
  std::string label() const override {
    return "Limit " + std::to_string(limit_);
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override {
    child_->Open();
    emitted_ = 0;
  }
  bool NextImpl(Row* out) override {
    if (emitted_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++emitted_;
    return true;
  }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

}  // namespace

OperatorPtr MakeTableScan(TablePtr table, const std::string& qualifier) {
  return std::make_unique<TableScanOp>(std::move(table), qualifier);
}

OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}

OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs,
                        std::vector<Column> output_columns) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(exprs),
                                     std::move(output_columns));
}

OperatorPtr MakeHashAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<Column> group_columns,
                              std::vector<AggregateSpec> aggregates,
                              size_t est_groups) {
  return std::make_unique<HashAggregateOp>(
      std::move(child), std::move(group_exprs), std::move(group_columns),
      std::move(aggregates), est_groups);
}

OperatorPtr MakeSortAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<Column> group_columns,
                              std::vector<AggregateSpec> aggregates) {
  return std::make_unique<SortAggregateOp>(
      std::move(child), std::move(group_exprs), std::move(group_columns),
      std::move(aggregates));
}

OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<ExprPtr> right_keys) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      std::move(left_keys),
                                      std::move(right_keys));
}

OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate) {
  return std::make_unique<NestedLoopJoinOp>(std::move(left), std::move(right),
                                            std::move(predicate));
}

OperatorPtr MakeSort(OperatorPtr child, std::vector<SortKey> keys) {
  return std::make_unique<SortOp>(std::move(child), std::move(keys));
}

OperatorPtr MakeLimit(OperatorPtr child, size_t limit) {
  return std::make_unique<LimitOp>(std::move(child), limit);
}

namespace {

/// Renders a cost-model annotation: " (est_rows=N est_bytes=… note)".
/// Empty string when the planner had no statistics for this node.
std::string FormatPlanEstimate(const Operator& op) {
  const Operator::PlanEstimate& est = op.plan_estimate();
  if (est.rows < 0 && est.bytes < 0 && est.note.empty()) return "";
  std::string out = " (";
  bool first = true;
  if (est.rows >= 0) {
    out += "est_rows=" + std::to_string(static_cast<long long>(
                             std::llround(est.rows)));
    first = false;
  }
  if (est.bytes >= 0) {
    if (!first) out += ' ';
    out += "est_bytes=" +
           FormatMemoryBytes(static_cast<uint64_t>(std::llround(est.bytes)));
    first = false;
  }
  if (!est.note.empty()) {
    if (!first) out += ' ';
    out += est.note;
  }
  return out + ")";
}

void ExplainRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += op.label();
  *out += FormatPlanEstimate(op);
  *out += '\n';
  for (const Operator* child : op.children()) {
    ExplainRec(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

std::string FormatMemoryBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

namespace {

void ExplainAnalyzeRec(const Operator& op, int depth, std::string* out) {
  const OperatorStats& stats = op.stats();
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += op.label();
  char buf[64];
  std::snprintf(buf, sizeof buf, " (rows=%llu",
                static_cast<unsigned long long>(stats.rows_produced));
  *out += buf;
  if (op.plan_estimate().rows >= 0) {
    // Estimate beside actual: the plan-vs-actual drift EXPLAIN ANALYZE
    // tests gate on.
    std::snprintf(buf, sizeof buf, " est_rows=%lld",
                  static_cast<long long>(std::llround(op.plan_estimate().rows)));
    *out += buf;
  }
  std::snprintf(buf, sizeof buf, " time=%.3fms", stats.TotalMillis());
  *out += buf;
  if (stats.batches > 0) {
    std::snprintf(buf, sizeof buf, " batches=%llu batch_size=%llu",
                  static_cast<unsigned long long>(stats.batches),
                  static_cast<unsigned long long>(stats.rows_produced /
                                                  stats.batches));
    *out += buf;
  }
  if (stats.peak_memory_bytes > 0) {
    *out += " mem=" + FormatMemoryBytes(stats.peak_memory_bytes);
  }
  for (const auto& [key, value] : stats.extra) {
    *out += ' ' + key + '=' + std::to_string(value);
  }
  *out += ")\n";
  for (const Operator* child : op.children()) {
    ExplainAnalyzeRec(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainAnalyzePlan(const Operator& root) {
  std::string out;
  ExplainAnalyzeRec(root, 0, &out);
  return out;
}

namespace {

/// Releases the result-table charge on every exit path of Materialize —
/// the query tracker only outlives the call by a moment, so the bytes of
/// the returned table must not stay charged against the budget.
struct ResultTableCharge {
  QueryContext* ctx;
  size_t charged = 0;
  ~ResultTableCharge() {
    if (ctx != nullptr && charged > 0) ctx->memory().Release(charged);
  }
  Status Update(const Table& table) {
    if (ctx == nullptr) return Status::OK();
    const size_t now = ApproxRowVectorBytes(table.rows());
    if (now > charged) {
      SGB_RETURN_IF_ERROR(ctx->memory().TryConsume(now - charged));
      charged = now;
    }
    return Status::OK();
  }
};

}  // namespace

Result<Table> Materialize(Operator& root) {
  ResultTableCharge charge{root.query_context()};
  try {
    Table table(root.schema());
    root.Open();
    RowBatch batch;
    while (root.NextBatch(&batch)) {
      for (Row& row : batch.rows()) {
        SGB_RETURN_IF_ERROR(table.Append(std::move(row)));
      }
      SGB_RETURN_IF_ERROR(charge.Update(table));
    }
    return table;
  } catch (const QueryAbort& abort) {
    // Governance failures (cancel, deadline, budget, injected faults)
    // travel as exceptions through the bool-returning operator interface
    // and become a plain Status here.
    return abort.status();
  }
}

}  // namespace sgb::engine
