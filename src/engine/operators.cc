#include "engine/operators.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "obs/metrics.h"

namespace sgb::engine {

// Fires on batch-buffer population — the engine's highest-frequency
// allocation path — so tests can exercise mid-query resource failures.
static FaultSite g_batch_alloc_fault("engine.batch.alloc",
                                     Status::Code::kResourceExhausted);

size_t ApproxRowVectorBytes(const std::vector<Row>& rows) {
  size_t total = rows.capacity() * sizeof(Row);
  for (const Row& row : rows) total += row.capacity() * sizeof(Value);
  return total;
}

bool Operator::NextBatch(RowBatch* out) {
  // Counter object lives for the registry's lifetime, so the reference
  // stays valid across MetricsRegistry::Reset().
  static obs::Counter& batches_counter =
      obs::MetricsRegistry::Global().GetCounter("engine.batches");
  ThrowIfAborted(ctx_);
  {
    Status fault = g_batch_alloc_fault.Check();
    if (!fault.ok()) throw QueryAbort(std::move(fault));
  }
  out->Clear();
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = NextBatchImpl(out);
  stats_.next_ns += ElapsedNs(t0);
  if (ok) {
    ++stats_.batches;
    stats_.rows_produced += out->size();
    batches_counter.Add(1);
  }
  return ok;
}

void Operator::SetQueryContext(QueryContext* ctx) {
  // Settle any outstanding charge against the context it was made on;
  // otherwise a later Open() would release it against the new one.
  if (ctx != ctx_) ReleaseCharge();
  ctx_ = ctx;
  // children() returns const pointers for plan rendering, but children are
  // owned (mutable) nodes; casting back is how the base class threads the
  // context without per-operator plumbing.
  for (const Operator* child : children()) {
    const_cast<Operator*>(child)->SetQueryContext(ctx);
  }
}

void Operator::ChargeMemory(size_t bytes) {
  stats_.peak_memory_bytes =
      std::max<uint64_t>(stats_.peak_memory_bytes, bytes);
  if (ctx_ == nullptr) return;
  if (bytes > charged_bytes_) {
    Status status = ctx_->memory().TryConsume(bytes - charged_bytes_);
    if (!status.ok()) throw QueryAbort(std::move(status));
    charged_bytes_ = bytes;
  } else if (bytes < charged_bytes_) {
    ctx_->memory().Release(charged_bytes_ - bytes);
    charged_bytes_ = bytes;
  }
}

namespace {

class TableScanOp final : public Operator {
 public:
  TableScanOp(TablePtr table, const std::string& qualifier)
      : table_(std::move(table)),
        schema_(qualifier.empty() ? table_->schema()
                                  : table_->schema().WithQualifier(qualifier)) {
  }
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "TableScan"; }
  std::string label() const override {
    return schema_.size() > 0 && !schema_.column(0).qualifier.empty()
               ? "TableScan " + schema_.column(0).qualifier
               : std::string("TableScan");
  }
  void OpenImpl() override { next_ = 0; }
  bool NextImpl(Row* out) override {
    if (next_ >= table_->NumRows()) return false;
    *out = table_->rows()[next_++];
    return true;
  }
  bool NextBatchImpl(RowBatch* out) override {
    const size_t end =
        std::min(table_->NumRows(), next_ + out->capacity());
    for (; next_ < end; ++next_) out->Append(table_->rows()[next_]);
    return !out->empty();
  }

 private:
  TablePtr table_;
  Schema schema_;
  size_t next_ = 0;
};

class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Filter"; }
  std::string label() const override {
    return "Filter " + predicate_->ToString();
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override { child_->Open(); }
  bool NextImpl(Row* out) override {
    while (child_->Next(out)) {
      if (predicate_->Evaluate(*out).ToBool()) return true;
    }
    return false;
  }
  bool NextBatchImpl(RowBatch* out) override {
    // Pull whole child batches and keep the passing rows; an all-filtered
    // batch just pulls the next one, so emitted batches are never empty
    // (though they may be smaller than capacity).
    RowBatch scratch(out->capacity());
    while (out->empty()) {
      if (!child_->NextBatch(&scratch)) return false;
      for (Row& row : scratch.rows()) {
        if (predicate_->Evaluate(row).ToBool()) out->Append(std::move(row));
      }
    }
    return true;
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<Column> output_columns)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(output_columns)) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Project"; }
  std::string label() const override {
    std::string out = "Project [";
    for (size_t i = 0; i < exprs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += exprs_[i]->ToString();
    }
    return out + "]";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override { child_->Open(); }
  bool NextImpl(Row* out) override {
    Row input;
    if (!child_->Next(&input)) return false;
    out->clear();
    out->reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) out->push_back(e->Evaluate(input));
    return true;
  }
  bool NextBatchImpl(RowBatch* out) override {
    RowBatch scratch(out->capacity());
    if (!child_->NextBatch(&scratch)) return false;
    for (const Row& input : scratch.rows()) {
      Row projected;
      projected.reserve(exprs_.size());
      for (const ExprPtr& e : exprs_) projected.push_back(e->Evaluate(input));
      out->Append(std::move(projected));
    }
    return true;
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<Column> group_columns,
                  std::vector<AggregateSpec> aggregates)
      : child_(std::move(child)),
        group_exprs_(std::move(group_exprs)),
        aggregates_(std::move(aggregates)) {
    Schema s(std::move(group_columns));
    for (const AggregateSpec& a : aggregates_) {
      s.AddColumn(Column{a.output_name, AggregateOutputType(a.kind), ""});
    }
    schema_ = std::move(s);
  }
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashAggregate"; }
  std::string label() const override {
    return "HashAggregate (keys=" + std::to_string(group_exprs_.size()) +
           ", aggs=" + std::to_string(aggregates_.size()) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  void OpenImpl() override {
    child_->Open();
    results_.clear();
    next_ = 0;

    struct GroupEntry {
      std::vector<std::unique_ptr<AggregateState>> states;
    };
    std::unordered_map<Row, GroupEntry, RowHash, RowEq> groups;
    std::vector<Row> key_order;  // deterministic output order

    Row row;
    while (child_->Next(&row)) {
      Row key;
      key.reserve(group_exprs_.size());
      for (const ExprPtr& e : group_exprs_) key.push_back(e->Evaluate(row));
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        key_order.push_back(key);
        it->second.states.reserve(aggregates_.size());
        for (const AggregateSpec& a : aggregates_) {
          it->second.states.push_back(CreateAggregateState(a));
        }
      }
      for (auto& state : it->second.states) state->Add(row);
    }

    // Global aggregation emits one row even when the input was empty.
    if (group_exprs_.empty() && groups.empty()) {
      Row out;
      for (const AggregateSpec& a : aggregates_) {
        out.push_back(CreateAggregateState(a)->Finalize());
      }
      results_.push_back(std::move(out));
      mutable_stats().extra["groups"] = results_.size();
      return;
    }

    results_.reserve(key_order.size());
    for (const Row& key : key_order) {
      Row out = key;
      for (const auto& state : groups[key].states) {
        out.push_back(state->Finalize());
      }
      results_.push_back(std::move(out));
    }
    mutable_stats().extra["groups"] = results_.size();
    ChargeMemory(ApproxRowVectorBytes(key_order) +
                 ApproxRowVectorBytes(results_) +
                 key_order.size() * (sizeof(std::unique_ptr<AggregateState>) *
                                     aggregates_.size()));
  }

  bool NextImpl(Row* out) override {
    if (next_ >= results_.size()) return false;
    *out = std::move(results_[next_++]);
    return true;
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  Schema schema_;
  std::vector<Row> results_;
  size_t next_ = 0;
};

class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        schema_(Schema::Concat(left_->schema(), right_->schema())) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashJoin"; }
  std::string label() const override {
    std::string out = "HashJoin on ";
    for (size_t i = 0; i < left_keys_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
    }
    return out;
  }
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

  void OpenImpl() override {
    // Build side: right input.
    right_->Open();
    build_.clear();
    Row row;
    while (right_->Next(&row)) {
      Row key;
      key.reserve(right_keys_.size());
      for (const ExprPtr& e : right_keys_) key.push_back(e->Evaluate(row));
      bool has_null = false;
      for (const Value& v : key) has_null = has_null || v.is_null();
      if (has_null) continue;  // NULL keys never join
      build_[std::move(key)].push_back(row);
    }
    size_t build_rows = 0;
    size_t build_bytes = 0;
    for (const auto& [key, rows] : build_) {
      build_rows += rows.size();
      build_bytes += key.capacity() * sizeof(Value) + ApproxRowVectorBytes(rows);
    }
    mutable_stats().extra["build_rows"] = build_rows;
    ChargeMemory(build_bytes);
    left_->Open();
    matches_ = nullptr;
    match_index_ = 0;
  }

  bool NextImpl(Row* out) override {
    while (true) {
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        *out = probe_row_;
        const Row& right_row = (*matches_)[match_index_++];
        out->insert(out->end(), right_row.begin(), right_row.end());
        return true;
      }
      matches_ = nullptr;
      if (!left_->Next(&probe_row_)) return false;
      Row key;
      key.reserve(left_keys_.size());
      for (const ExprPtr& e : left_keys_) {
        key.push_back(e->Evaluate(probe_row_));
      }
      bool has_null = false;
      for (const Value& v : key) has_null = has_null || v.is_null();
      if (has_null) continue;
      const auto it = build_.find(key);
      if (it == build_.end()) continue;
      matches_ = &it->second;
      match_index_ = 0;
    }
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  Schema schema_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> build_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
};

class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(std::move(predicate)),
        schema_(Schema::Concat(left_->schema(), right_->schema())) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "NestedLoopJoin"; }
  std::string label() const override {
    return predicate_ == nullptr
               ? std::string("NestedLoopJoin (cross)")
               : "NestedLoopJoin " + predicate_->ToString();
  }
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

  void OpenImpl() override {
    right_->Open();
    right_rows_.clear();
    Row row;
    while (right_->Next(&row)) right_rows_.push_back(row);
    ChargeMemory(ApproxRowVectorBytes(right_rows_));
    left_->Open();
    have_left_ = false;
    right_index_ = 0;
  }

  bool NextImpl(Row* out) override {
    while (true) {
      if (!have_left_) {
        if (!left_->Next(&left_row_)) return false;
        have_left_ = true;
        right_index_ = 0;
      }
      while (right_index_ < right_rows_.size()) {
        const Row& r = right_rows_[right_index_++];
        Row joined = left_row_;
        joined.insert(joined.end(), r.begin(), r.end());
        if (predicate_ == nullptr || predicate_->Evaluate(joined).ToBool()) {
          *out = std::move(joined);
          return true;
        }
      }
      have_left_ = false;
    }
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  size_t right_index_ = 0;
};

class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Sort"; }
  std::string label() const override {
    std::string out = "Sort [";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys_[i].expr->ToString();
      out += keys_[i].ascending ? " asc" : " desc";
    }
    return out + "]";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  void OpenImpl() override {
    child_->Open();
    rows_.clear();
    next_ = 0;
    Row row;
    while (child_->Next(&row)) rows_.push_back(std::move(row));
    ChargeMemory(ApproxRowVectorBytes(rows_));
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const SortKey& k : keys_) {
                         const int c = Value::Compare(k.expr->Evaluate(a),
                                                      k.expr->Evaluate(b));
                         if (c != 0) return k.ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }

  bool NextImpl(Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t next_ = 0;
};

class LimitOp final : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}
  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Limit"; }
  std::string label() const override {
    return "Limit " + std::to_string(limit_);
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override {
    child_->Open();
    emitted_ = 0;
  }
  bool NextImpl(Row* out) override {
    if (emitted_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++emitted_;
    return true;
  }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

}  // namespace

OperatorPtr MakeTableScan(TablePtr table, const std::string& qualifier) {
  return std::make_unique<TableScanOp>(std::move(table), qualifier);
}

OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}

OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs,
                        std::vector<Column> output_columns) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(exprs),
                                     std::move(output_columns));
}

OperatorPtr MakeHashAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<Column> group_columns,
                              std::vector<AggregateSpec> aggregates) {
  return std::make_unique<HashAggregateOp>(
      std::move(child), std::move(group_exprs), std::move(group_columns),
      std::move(aggregates));
}

OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<ExprPtr> right_keys) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      std::move(left_keys),
                                      std::move(right_keys));
}

OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate) {
  return std::make_unique<NestedLoopJoinOp>(std::move(left), std::move(right),
                                            std::move(predicate));
}

OperatorPtr MakeSort(OperatorPtr child, std::vector<SortKey> keys) {
  return std::make_unique<SortOp>(std::move(child), std::move(keys));
}

OperatorPtr MakeLimit(OperatorPtr child, size_t limit) {
  return std::make_unique<LimitOp>(std::move(child), limit);
}

namespace {

void ExplainRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += op.label();
  *out += '\n';
  for (const Operator* child : op.children()) {
    ExplainRec(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

std::string FormatMemoryBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

namespace {

void ExplainAnalyzeRec(const Operator& op, int depth, std::string* out) {
  const OperatorStats& stats = op.stats();
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += op.label();
  char buf[64];
  std::snprintf(buf, sizeof buf, " (rows=%llu time=%.3fms",
                static_cast<unsigned long long>(stats.rows_produced),
                stats.TotalMillis());
  *out += buf;
  if (stats.batches > 0) {
    std::snprintf(buf, sizeof buf, " batches=%llu batch_size=%llu",
                  static_cast<unsigned long long>(stats.batches),
                  static_cast<unsigned long long>(stats.rows_produced /
                                                  stats.batches));
    *out += buf;
  }
  if (stats.peak_memory_bytes > 0) {
    *out += " mem=" + FormatMemoryBytes(stats.peak_memory_bytes);
  }
  for (const auto& [key, value] : stats.extra) {
    *out += ' ' + key + '=' + std::to_string(value);
  }
  *out += ")\n";
  for (const Operator* child : op.children()) {
    ExplainAnalyzeRec(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainAnalyzePlan(const Operator& root) {
  std::string out;
  ExplainAnalyzeRec(root, 0, &out);
  return out;
}

namespace {

/// Releases the result-table charge on every exit path of Materialize —
/// the query tracker only outlives the call by a moment, so the bytes of
/// the returned table must not stay charged against the budget.
struct ResultTableCharge {
  QueryContext* ctx;
  size_t charged = 0;
  ~ResultTableCharge() {
    if (ctx != nullptr && charged > 0) ctx->memory().Release(charged);
  }
  Status Update(const Table& table) {
    if (ctx == nullptr) return Status::OK();
    const size_t now = ApproxRowVectorBytes(table.rows());
    if (now > charged) {
      SGB_RETURN_IF_ERROR(ctx->memory().TryConsume(now - charged));
      charged = now;
    }
    return Status::OK();
  }
};

}  // namespace

Result<Table> Materialize(Operator& root) {
  ResultTableCharge charge{root.query_context()};
  try {
    Table table(root.schema());
    root.Open();
    RowBatch batch;
    while (root.NextBatch(&batch)) {
      for (Row& row : batch.rows()) {
        SGB_RETURN_IF_ERROR(table.Append(std::move(row)));
      }
      SGB_RETURN_IF_ERROR(charge.Update(table));
    }
    return table;
  } catch (const QueryAbort& abort) {
    // Governance failures (cancel, deadline, budget, injected faults)
    // travel as exceptions through the bool-returning operator interface
    // and become a plain Status here.
    return abort.status();
  }
}

}  // namespace sgb::engine
