#include "engine/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fault_injection.h"

namespace sgb::engine {

// I/O-boundary sites: armed, they simulate a failing read/write of the
// underlying file without touching the filesystem.
static FaultSite g_csv_read_fault("engine.csv.read", Status::Code::kIoError);
static FaultSite g_csv_write_fault("engine.csv.write",
                                   Status::Code::kIoError);

namespace {

/// Raw cells per row plus the 1-based physical line each row started on
/// (quoted fields may span lines, so row index != line number).
struct SplitResult {
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> line_of_row;
};

/// Splits CSV text into rows of raw cells, honoring quotes and tracking
/// line numbers for error reporting.
Result<SplitResult> SplitCells(const std::string& text, char delimiter,
                               size_t max_line_bytes) {
  SplitResult out;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  bool any_content = false;
  size_t line = 1;        // current physical line
  size_t row_line = 1;    // line the in-progress row started on
  size_t quote_line = 1;  // line the open quote started on
  size_t line_bytes = 0;

  auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
    cell_was_quoted = false;
  };
  auto end_row = [&] {
    end_cell();
    out.rows.push_back(std::move(row));
    out.line_of_row.push_back(row_line);
    row.clear();
    any_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '\n') {
      ++line_bytes;
      if (max_line_bytes > 0 && line_bytes > max_line_bytes) {
        return Status::InvalidArgument(
            "CSV: line " + std::to_string(line) + " exceeds the " +
            std::to_string(max_line_bytes) + "-byte line limit");
      }
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
          ++line_bytes;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') {
          ++line;
          line_bytes = 0;
        }
        cell += c;
      }
      continue;
    }
    if (!any_content && cell.empty() && row.empty()) row_line = line;
    if (c == '"' && cell.empty() && !cell_was_quoted) {
      in_quotes = true;
      quote_line = line;
      cell_was_quoted = true;
      any_content = true;
      continue;
    }
    if (c == delimiter) {
      end_cell();
      any_content = true;
      continue;
    }
    if (c == '\n') {
      if (any_content || !cell.empty()) end_row();
      ++line;
      line_bytes = 0;
      continue;
    }
    if (c == '\r') continue;
    cell += c;
    any_content = true;
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        "CSV: unterminated quoted field opened on line " +
        std::to_string(quote_line));
  }
  if (any_content || !cell.empty()) end_row();
  return out;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (const char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

Result<TablePtr> ReadCsvFromString(const std::string& text,
                                   const CsvOptions& options) {
  if (text.empty()) {
    return Status::InvalidArgument("CSV: empty input");
  }
  auto cells = SplitCells(text, options.delimiter, options.max_line_bytes);
  if (!cells.ok()) return cells.status();
  const auto& rows = cells.value().rows;
  const auto& line_of_row = cells.value().line_of_row;
  if (rows.empty()) {
    return Status::InvalidArgument("CSV: no rows");
  }

  size_t first_data = 0;
  std::vector<std::string> names;
  if (options.has_header) {
    names = rows[0];
    first_data = 1;
  } else {
    for (size_t c = 0; c < rows[0].size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }
  const size_t ncols = names.size();
  for (size_t r = first_data; r < rows.size(); ++r) {
    if (rows[r].size() != ncols) {
      return Status::InvalidArgument(
          "CSV: row on line " + std::to_string(line_of_row[r]) + " has " +
          std::to_string(rows[r].size()) + " cells, expected " +
          std::to_string(ncols));
    }
  }

  // Per-column type inference over the data rows.
  std::vector<DataType> types(ncols, DataType::kNull);
  for (size_t c = 0; c < ncols; ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (size_t r = first_data; r < rows.size(); ++r) {
      const std::string& s = rows[r][c];
      if (s.empty()) continue;
      any_value = true;
      int64_t iv;
      double dv;
      if (!ParseInt(s, &iv)) all_int = false;
      if (!ParseDouble(s, &dv)) all_double = false;
    }
    if (!any_value) {
      types[c] = DataType::kString;
    } else if (all_int) {
      types[c] = DataType::kInt64;
    } else if (all_double) {
      types[c] = DataType::kDouble;
    } else {
      types[c] = DataType::kString;
    }
  }

  Schema schema;
  for (size_t c = 0; c < ncols; ++c) {
    schema.AddColumn(Column{names[c], types[c], ""});
  }
  auto table = std::make_shared<Table>(std::move(schema));
  table->Reserve(rows.size() - first_data);
  for (size_t r = first_data; r < rows.size(); ++r) {
    Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& s = rows[r][c];
      if (s.empty()) {
        row.push_back(Value::Null());
      } else if (types[c] == DataType::kInt64) {
        int64_t v = 0;
        ParseInt(s, &v);
        row.push_back(Value::Int(v));
      } else if (types[c] == DataType::kDouble) {
        double v = 0;
        ParseDouble(s, &v);
        row.push_back(Value::Double(v));
      } else {
        row.push_back(Value::Str(s));
      }
    }
    SGB_RETURN_IF_ERROR(table->Append(std::move(row)));
  }
  return TablePtr(table);
}

Result<TablePtr> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  SGB_RETURN_IF_ERROR(g_csv_read_fault.Check());
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read error on CSV file '" + path + "'");
  }
  return ReadCsvFromString(buffer.str(), options);
}

std::string WriteCsvToString(const Table& table, const CsvOptions& options) {
  std::string out;
  auto emit = [&out, &options](const std::string& cell) {
    if (NeedsQuoting(cell, options.delimiter)) {
      out += '"';
      for (const char c : cell) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += cell;
    }
  };

  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c > 0) out += options.delimiter;
      emit(schema.column(c).name);
    }
    out += '\n';
  }
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += options.delimiter;
      if (!row[c].is_null()) emit(row[c].ToString());
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  SGB_RETURN_IF_ERROR(g_csv_write_fault.Check());
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << WriteCsvToString(table, options);
  return out.good() ? Status::OK()
                    : Status::IoError("short write to '" + path + "'");
}

}  // namespace sgb::engine
