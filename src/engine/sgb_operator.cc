#include "engine/sgb_operator.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "core/sgb_nd.h"
#include "engine/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgb::engine {

// Fires between input buffering and the core grouping run — the point
// where the SGB operator commits to its most expensive phase.
static FaultSite g_sgb_build_fault("engine.sgb.build",
                                   Status::Code::kInternal);

namespace {

void ThrowIfError(Status status) {
  if (!status.ok()) throw QueryAbort(std::move(status));
}

std::unique_ptr<SpillFile> CreateSpillFileOrThrow(const std::string& dir) {
  Result<std::unique_ptr<SpillFile>> file = SpillFile::Create(dir);
  if (!file.ok()) throw QueryAbort(file.status());
  return std::move(file).value();
}

bool NextOrThrow(SpillFile* file, Row* row) {
  Result<bool> more = file->Next(row);
  if (!more.ok()) throw QueryAbort(more.status());
  return more.value();
}

std::string DescribeDop(int dop) {
  if (dop == 1) return "";  // serial is the default; keep labels terse
  if (dop == 0) return ", dop=auto";
  return ", dop=" + std::to_string(dop);
}

std::string DescribeMode(const SgbMode& mode) {
  if (const auto* all = std::get_if<core::SgbAllOptions>(&mode)) {
    return std::string(" (eps=") + engine::Value::Double(all->epsilon)
               .ToString() +
           ", " + (all->metric == geom::Metric::kL2 ? "L2" : "LINF") + ", " +
           core::ToString(all->on_overlap) + ", " +
           core::ToString(all->algorithm) +
           DescribeDop(all->degree_of_parallelism) + ")";
  }
  const auto& any = std::get<core::SgbAnyOptions>(mode);
  return std::string(" (eps=") + engine::Value::Double(any.epsilon)
             .ToString() +
         ", " + (any.metric == geom::Metric::kL2 ? "L2" : "LINF") +
         DescribeDop(any.degree_of_parallelism) + ")";
}

/// Per-worker-slot EXPLAIN ANALYZE annotations for parallel runs:
/// "w<i>.points" / "w<i>.dist_comps" break the aggregate counters down by
/// worker so skew across partitions is visible per plan node
/// (docs/PARALLELISM.md).
void PublishWorkerBreakdown(size_t partitions,
                            const std::vector<core::SgbWorkerStats>& workers,
                            OperatorStats* out) {
  if (workers.empty()) return;
  out->extra["dop"] = workers.size();
  out->extra["partitions"] = partitions;
  for (size_t w = 0; w < workers.size(); ++w) {
    const std::string prefix = "w" + std::to_string(w) + ".";
    out->extra[prefix + "points"] = workers[w].points;
    out->extra[prefix + "dist_comps"] = workers[w].distance_computations;
  }
}

/// Copies the core algorithm counters into the operator's stats block so
/// EXPLAIN ANALYZE can render them per plan node. Zero-valued counters are
/// skipped to keep the annotation noise-free (e.g. no hull_tests for L∞).
void PublishSgbAllStats(const core::SgbAllStats& s, OperatorStats* out) {
  out->extra["dist_comps"] = s.distance_computations;
  if (s.rectangle_tests > 0) out->extra["rect_tests"] = s.rectangle_tests;
  if (s.hull_tests > 0) out->extra["hull_tests"] = s.hull_tests;
  if (s.index_window_queries > 0) {
    out->extra["window_queries"] = s.index_window_queries;
  }
  if (s.regroup_rounds > 0) out->extra["regroup_rounds"] = s.regroup_rounds;
  PublishWorkerBreakdown(s.parallel_partitions, s.workers, out);
}

void PublishSgbAnyStats(const core::SgbAnyStats& s, OperatorStats* out) {
  out->extra["dist_comps"] = s.distance_computations;
  if (s.index_window_queries > 0) {
    out->extra["window_queries"] = s.index_window_queries;
  }
  if (s.union_operations > 0) out->extra["union_ops"] = s.union_operations;
  if (s.group_merges > 0) out->extra["group_merges"] = s.group_merges;
  PublishWorkerBreakdown(s.parallel_partitions, s.workers, out);
}

/// Shared driver for the 2-D and 1-D variants: drains the child, labels
/// every row with a group id (or "no group"), then aggregates per group.
class SgbOperatorBase : public Operator {
 public:
  SgbOperatorBase(OperatorPtr child, std::vector<AggregateSpec> aggregates)
      : child_(std::move(child)), aggregates_(std::move(aggregates)) {
    Schema s;
    s.AddColumn(Column{"group_id", DataType::kInt64, ""});
    for (const AggregateSpec& a : aggregates_) {
      s.AddColumn(Column{a.output_name, AggregateOutputType(a.kind), ""});
    }
    schema_ = std::move(s);
  }

  const Schema& schema() const override { return schema_; }

  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  void OpenImpl() override {
    child_->Open();
    rows_.clear();
    results_.clear();
    next_ = 0;
    spilled_rows_.reset();
    ResetPoints();

    // Drain the child. The coordinate columns are extracted per row as it
    // arrives (they must stay in RAM for the grouping core); the full row
    // payloads — the dominant memory — are what the spill path moves to
    // disk when the budget pushes back. Rows are spilled in input order,
    // so the streamed re-aggregation below is bit-identical to the
    // in-memory one.
    size_t row_count = 0;
    RowBatch batch;
    if (SpillEnabled()) {
      size_t mem_estimate = 0;
      while (child_->NextBatch(&batch)) {
        for (Row& row : batch.rows()) {
          AddPoint(row, row_count++);
          if (spilled_rows_ != nullptr) {
            ThrowIfError(spilled_rows_->Append(row));
            continue;
          }
          mem_estimate += sizeof(Row) + row.capacity() * sizeof(Value);
          rows_.push_back(std::move(row));
          if (TryChargeMemory(mem_estimate + PointBytes())) continue;
          // Budget breached: move the buffered rows to disk and keep
          // streaming the remaining input straight there.
          SpillBufferedRows();
        }
      }
      if (spilled_rows_ != nullptr) FinishSpill();
    } else {
      while (child_->NextBatch(&batch)) {
        for (Row& row : batch.rows()) {
          AddPoint(row, row_count++);
          rows_.push_back(std::move(row));
        }
      }
      ChargeMemory(ApproxRowVectorBytes(rows_) + PointBytes());
    }
    {
      Status fault = g_sgb_build_fault.Check();
      if (!fault.ok()) throw QueryAbort(std::move(fault));
    }

    size_t num_groups = 0;
    std::vector<size_t> group_of;
    {
      // The grouping phase is the operator's hot core; it gets its own
      // trace span with the group count, memory delta, and SIMD kernel
      // invocations attached (PROFILE's mem_bytes/kernels columns).
      auto& kernel_counter = obs::MetricsRegistry::Global().GetCounter(
          "sgb.kernel.invocations");
      const uint64_t kernels_before = kernel_counter.value();
      const size_t mem_before =
          query_context() != nullptr ? query_context()->memory().usage_bytes()
                                     : 0;
      obs::ScopedSpan group_span(Trace(), "sgb.group");
      // The grouping core makes its own transient charges (union-find
      // bookkeeping, grid cells). When the drain fit in memory but left no
      // headroom for them, spill the buffered rows after the fact and label
      // again against the freed budget.
      try {
        group_of = LabelPoints(row_count, &num_groups);
      } catch (const QueryAbort& abort) {
        if (!SpillEnabled() || spilled_rows_ != nullptr ||
            abort.status().code() != Status::Code::kResourceExhausted) {
          throw;
        }
        SpillBufferedRows();
        FinishSpill();
        group_of = LabelPoints(row_count, &num_groups);
      }
      group_span.AddAttribute("groups", static_cast<double>(num_groups));
      group_span.AddAttribute(
          "kernels",
          static_cast<double>(kernel_counter.value() - kernels_before));
      if (query_context() != nullptr) {
        group_span.AddAttribute(
            "mem_bytes",
            static_cast<double>(query_context()->memory().usage_bytes()) -
                static_cast<double>(mem_before));
      }
    }
    mutable_stats().extra["groups"] = num_groups;
    // Cost-model prediction beside the actual, so EXPLAIN ANALYZE shows the
    // estimator's drift per plan node (absent when ANALYZE never ran).
    if (plan_estimate().rows >= 0) {
      mutable_stats().extra["est_groups"] =
          static_cast<uint64_t>(plan_estimate().rows);
    }

    std::vector<std::vector<std::unique_ptr<AggregateState>>> states(
        num_groups);
    for (auto& group_states : states) {
      group_states.reserve(aggregates_.size());
      for (const AggregateSpec& a : aggregates_) {
        group_states.push_back(CreateAggregateState(a));
      }
    }
    if (spilled_rows_ == nullptr) {
      for (size_t i = 0; i < rows_.size(); ++i) {
        const size_t g = group_of[i];
        if (g == kNoGroup) continue;
        for (auto& state : states[g]) state->Add(rows_[i]);
      }
    } else {
      // Stream the spilled rows back in input order; the aggregation adds
      // in exactly the order the in-memory loop would.
      obs::ScopedSpan read_span(Trace(), "spill.read");
      read_span.AddAttribute("bytes",
                             static_cast<double>(spilled_rows_->bytes()));
      Row row;
      size_t i = 0;
      while (NextOrThrow(spilled_rows_.get(), &row)) {
        const size_t g = group_of[i++];
        if (g == kNoGroup) continue;
        for (auto& state : states[g]) state->Add(row);
      }
      spilled_rows_.reset();
    }
    results_.reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      Row out;
      out.reserve(1 + aggregates_.size());
      out.push_back(Value::Int(static_cast<int64_t>(g)));
      for (const auto& state : states[g]) out.push_back(state->Finalize());
      results_.push_back(std::move(out));
    }
    rows_.clear();
    ChargeMemory(PointBytes() + ApproxRowVectorBytes(results_));
  }

  bool NextImpl(Row* out) override {
    if (next_ >= results_.size()) return false;
    *out = std::move(results_[next_++]);
    return true;
  }

  bool NextBatchImpl(RowBatch* out) override {
    const size_t end = std::min(results_.size(), next_ + out->capacity());
    for (; next_ < end; ++next_) out->Append(std::move(results_[next_]));
    return !out->empty();
  }

 protected:
  static constexpr size_t kNoGroup = static_cast<size_t>(-1);

  /// Incremental labeling interface. The base drains the child calling
  /// AddPoint(row, input_index) per row — implementations extract and keep
  /// only the coordinate columns (PointBytes() reports how much RAM that
  /// is) — then calls LabelPoints once, which runs the grouping core and
  /// assigns a group id in [0, *num_groups) — or kNoGroup — to every input
  /// index. Implementations publish their core-algorithm counters
  /// (distance computations, rectangle tests, ...) into
  /// mutable_stats().extra.
  virtual void ResetPoints() = 0;
  virtual void AddPoint(const Row& row, size_t index) = 0;
  virtual size_t PointBytes() const = 0;
  virtual std::vector<size_t> LabelPoints(size_t num_rows,
                                          size_t* num_groups) = 0;

 private:
  /// Span sink for this execution (null when untraced).
  obs::QueryTrace* Trace() const {
    return query_context() != nullptr ? query_context()->trace() : nullptr;
  }

  /// Moves the in-memory row buffer to a spill file (preserving input
  /// order) and drops its budget charge; only the coordinate SoA stays
  /// resident. The aggregation pass streams the file back.
  void SpillBufferedRows() {
    obs::ScopedSpan write_span(Trace(), "spill.write");
    spilled_rows_ = CreateSpillFileOrThrow(query_context()->spill().directory);
    for (const Row& buffered : rows_) {
      ThrowIfError(spilled_rows_->Append(buffered));
    }
    write_span.AddAttribute("rows", static_cast<double>(rows_.size()));
    rows_.clear();
    ChargeMemory(PointBytes());
  }

  void FinishSpill() {
    ThrowIfError(spilled_rows_->FinishWrites());
    if (query_context() != nullptr) {
      query_context()->AddSpill(spilled_rows_->bytes());
    }
    mutable_stats().extra["spilled"] += 1;
    mutable_stats().extra["spill_bytes"] += spilled_rows_->bytes();
    obs::MetricsRegistry::Global().GetCounter("spill.events").Add(1);
  }

  OperatorPtr child_;
  std::vector<AggregateSpec> aggregates_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<Row> results_;
  size_t next_ = 0;
  std::unique_ptr<SpillFile> spilled_rows_;  ///< input rows, when spilling
};

class SgbOperator2d final : public SgbOperatorBase {
 public:
  SgbOperator2d(OperatorPtr child, ExprPtr x_expr, ExprPtr y_expr,
                SgbMode mode, std::vector<AggregateSpec> aggregates)
      : SgbOperatorBase(std::move(child), std::move(aggregates)),
        x_expr_(std::move(x_expr)),
        y_expr_(std::move(y_expr)),
        mode_(std::move(mode)) {}

  std::string name() const override {
    return std::holds_alternative<core::SgbAllOptions>(mode_)
               ? "SimilarityGroupByAll"
               : "SimilarityGroupByAny";
  }

  std::string label() const override { return name() + DescribeMode(mode_); }

 protected:
  void ResetPoints() override {
    points_.clear();
    point_row_.clear();
  }

  void AddPoint(const Row& row, size_t index) override {
    const Value x = x_expr_->Evaluate(row);
    const Value y = y_expr_->Evaluate(row);
    if (x.is_null() || y.is_null()) return;
    points_.push_back(geom::Point{x.ToDouble(), y.ToDouble()});
    point_row_.push_back(index);
  }

  size_t PointBytes() const override {
    return points_.capacity() * sizeof(geom::Point) +
           point_row_.capacity() * sizeof(size_t);
  }

  std::vector<size_t> LabelPoints(size_t num_rows,
                                  size_t* num_groups) override {
    core::Grouping grouping;
    if (const auto* all = std::get_if<core::SgbAllOptions>(&mode_)) {
      core::SgbAllOptions opts = *all;
      opts.query_ctx = query_context();
      core::SgbAllStats core_stats;
      Result<core::Grouping> r = core::SgbAll(points_, opts, &core_stats);
      PublishSgbAllStats(core_stats, &mutable_stats());
      // Options are validated at plan time, so a non-OK result here is a
      // governance abort (cancel/deadline/budget/fault) from the core.
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r.value());
    } else {
      core::SgbAnyOptions opts = std::get<core::SgbAnyOptions>(mode_);
      opts.query_ctx = query_context();
      core::SgbAnyStats core_stats;
      Result<core::Grouping> r = core::SgbAny(points_, opts, &core_stats);
      PublishSgbAnyStats(core_stats, &mutable_stats());
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r.value());
    }

    std::vector<size_t> group_of(num_rows, kNoGroup);
    for (size_t k = 0; k < point_row_.size(); ++k) {
      if (grouping.group_of[k] != core::Grouping::kEliminated) {
        group_of[point_row_[k]] = grouping.group_of[k];
      }
    }
    *num_groups = grouping.num_groups;
    ResetPoints();
    return group_of;
  }

 private:
  ExprPtr x_expr_;
  ExprPtr y_expr_;
  SgbMode mode_;
  std::vector<geom::Point> points_;
  std::vector<size_t> point_row_;  // input row of each grouped point
};

class SgbOperator3d final : public SgbOperatorBase {
 public:
  SgbOperator3d(OperatorPtr child, ExprPtr x_expr, ExprPtr y_expr,
                ExprPtr z_expr, SgbMode mode,
                std::vector<AggregateSpec> aggregates)
      : SgbOperatorBase(std::move(child), std::move(aggregates)),
        x_expr_(std::move(x_expr)),
        y_expr_(std::move(y_expr)),
        z_expr_(std::move(z_expr)),
        mode_(std::move(mode)) {}

  std::string name() const override {
    return std::holds_alternative<core::SgbAllOptions>(mode_)
               ? "SimilarityGroupByAll3d"
               : "SimilarityGroupByAny3d";
  }

  std::string label() const override { return name() + DescribeMode(mode_); }

 protected:
  void ResetPoints() override {
    points_.clear();
    point_row_.clear();
  }

  void AddPoint(const Row& row, size_t index) override {
    const Value x = x_expr_->Evaluate(row);
    const Value y = y_expr_->Evaluate(row);
    const Value z = z_expr_->Evaluate(row);
    if (x.is_null() || y.is_null() || z.is_null()) return;
    points_.push_back(
        geom::PointN<3>{{x.ToDouble(), y.ToDouble(), z.ToDouble()}});
    point_row_.push_back(index);
  }

  size_t PointBytes() const override {
    return points_.capacity() * sizeof(geom::PointN<3>) +
           point_row_.capacity() * sizeof(size_t);
  }

  std::vector<size_t> LabelPoints(size_t num_rows,
                                  size_t* num_groups) override {
    core::Grouping grouping;
    if (const auto* all = std::get_if<core::SgbAllOptions>(&mode_)) {
      core::SgbAllOptions opts = *all;
      opts.query_ctx = query_context();
      core::SgbAllStats core_stats;
      Result<core::Grouping> r = core::SgbAllNd<3>(points_, opts, &core_stats);
      PublishSgbAllStats(core_stats, &mutable_stats());
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r).value();
    } else {
      core::SgbAnyOptions opts = std::get<core::SgbAnyOptions>(mode_);
      opts.query_ctx = query_context();
      core::SgbAnyStats core_stats;
      Result<core::Grouping> r = core::SgbAnyNd<3>(points_, opts, &core_stats);
      PublishSgbAnyStats(core_stats, &mutable_stats());
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r).value();
    }

    std::vector<size_t> group_of(num_rows, kNoGroup);
    for (size_t k = 0; k < point_row_.size(); ++k) {
      if (grouping.group_of[k] != core::Grouping::kEliminated) {
        group_of[point_row_[k]] = grouping.group_of[k];
      }
    }
    *num_groups = grouping.num_groups;
    ResetPoints();
    return group_of;
  }

 private:
  ExprPtr x_expr_;
  ExprPtr y_expr_;
  ExprPtr z_expr_;
  SgbMode mode_;
  std::vector<geom::PointN<3>> points_;
  std::vector<size_t> point_row_;
};

class SgbOperator1d final : public SgbOperatorBase {
 public:
  SgbOperator1d(OperatorPtr child, ExprPtr value_expr, Sgb1dMode mode,
                std::vector<AggregateSpec> aggregates)
      : SgbOperatorBase(std::move(child), std::move(aggregates)),
        value_expr_(std::move(value_expr)),
        mode_(std::move(mode)) {}

  std::string name() const override { return "SimilarityGroupBy1d"; }

 protected:
  void ResetPoints() override {
    values_.clear();
    value_row_.clear();
  }

  void AddPoint(const Row& row, size_t index) override {
    const Value v = value_expr_->Evaluate(row);
    if (v.is_null() || !v.IsNumeric()) return;
    values_.push_back(v.ToDouble());
    value_row_.push_back(index);
  }

  size_t PointBytes() const override {
    return values_.capacity() * sizeof(double) +
           value_row_.capacity() * sizeof(size_t);
  }

  std::vector<size_t> LabelPoints(size_t num_rows,
                                  size_t* num_groups) override {
    Result<core::Grouping1D> r = [&]() -> Result<core::Grouping1D> {
      if (const auto* u = std::get_if<Sgb1dUnsupervised>(&mode_)) {
        return core::SgbUnsupervised(values_, u->max_separation,
                                     u->max_diameter);
      }
      if (const auto* a = std::get_if<Sgb1dAround>(&mode_)) {
        return core::SgbAround(values_, a->centers, a->max_separation,
                               a->max_diameter);
      }
      const auto& d = std::get<Sgb1dDelimited>(mode_);
      return core::SgbDelimited(values_, d.delimiters);
    }();
    const core::Grouping1D grouping =
        r.ok() ? std::move(r.value()) : core::Grouping1D{};

    std::vector<size_t> group_of(num_rows, kNoGroup);
    for (size_t k = 0; k < value_row_.size(); ++k) {
      if (grouping.group_of[k] != core::Grouping1D::kUngrouped) {
        group_of[value_row_[k]] = grouping.group_of[k];
      }
    }
    *num_groups = grouping.num_groups;
    ResetPoints();
    return group_of;
  }

 private:
  ExprPtr value_expr_;
  Sgb1dMode mode_;
  std::vector<double> values_;
  std::vector<size_t> value_row_;
};

}  // namespace

OperatorPtr MakeSimilarityGroupBy(OperatorPtr child, ExprPtr x_expr,
                                  ExprPtr y_expr, SgbMode mode,
                                  std::vector<AggregateSpec> aggregates) {
  return std::make_unique<SgbOperator2d>(std::move(child), std::move(x_expr),
                                         std::move(y_expr), std::move(mode),
                                         std::move(aggregates));
}

OperatorPtr MakeSimilarityGroupBy3d(OperatorPtr child, ExprPtr x_expr,
                                    ExprPtr y_expr, ExprPtr z_expr,
                                    SgbMode mode,
                                    std::vector<AggregateSpec> aggregates) {
  return std::make_unique<SgbOperator3d>(
      std::move(child), std::move(x_expr), std::move(y_expr),
      std::move(z_expr), std::move(mode), std::move(aggregates));
}

OperatorPtr MakeSimilarityGroupBy1d(OperatorPtr child, ExprPtr value_expr,
                                    Sgb1dMode mode,
                                    std::vector<AggregateSpec> aggregates) {
  return std::make_unique<SgbOperator1d>(std::move(child),
                                         std::move(value_expr),
                                         std::move(mode),
                                         std::move(aggregates));
}

}  // namespace sgb::engine
