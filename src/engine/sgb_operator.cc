#include "engine/sgb_operator.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "core/sgb_nd.h"

namespace sgb::engine {

// Fires between input buffering and the core grouping run — the point
// where the SGB operator commits to its most expensive phase.
static FaultSite g_sgb_build_fault("engine.sgb.build",
                                   Status::Code::kInternal);

namespace {

std::string DescribeDop(int dop) {
  if (dop == 1) return "";  // serial is the default; keep labels terse
  if (dop == 0) return ", dop=auto";
  return ", dop=" + std::to_string(dop);
}

std::string DescribeMode(const SgbMode& mode) {
  if (const auto* all = std::get_if<core::SgbAllOptions>(&mode)) {
    return std::string(" (eps=") + engine::Value::Double(all->epsilon)
               .ToString() +
           ", " + (all->metric == geom::Metric::kL2 ? "L2" : "LINF") + ", " +
           core::ToString(all->on_overlap) + ", " +
           core::ToString(all->algorithm) +
           DescribeDop(all->degree_of_parallelism) + ")";
  }
  const auto& any = std::get<core::SgbAnyOptions>(mode);
  return std::string(" (eps=") + engine::Value::Double(any.epsilon)
             .ToString() +
         ", " + (any.metric == geom::Metric::kL2 ? "L2" : "LINF") +
         DescribeDop(any.degree_of_parallelism) + ")";
}

/// Per-worker-slot EXPLAIN ANALYZE annotations for parallel runs:
/// "w<i>.points" / "w<i>.dist_comps" break the aggregate counters down by
/// worker so skew across partitions is visible per plan node
/// (docs/PARALLELISM.md).
void PublishWorkerBreakdown(size_t partitions,
                            const std::vector<core::SgbWorkerStats>& workers,
                            OperatorStats* out) {
  if (workers.empty()) return;
  out->extra["dop"] = workers.size();
  out->extra["partitions"] = partitions;
  for (size_t w = 0; w < workers.size(); ++w) {
    const std::string prefix = "w" + std::to_string(w) + ".";
    out->extra[prefix + "points"] = workers[w].points;
    out->extra[prefix + "dist_comps"] = workers[w].distance_computations;
  }
}

/// Copies the core algorithm counters into the operator's stats block so
/// EXPLAIN ANALYZE can render them per plan node. Zero-valued counters are
/// skipped to keep the annotation noise-free (e.g. no hull_tests for L∞).
void PublishSgbAllStats(const core::SgbAllStats& s, OperatorStats* out) {
  out->extra["dist_comps"] = s.distance_computations;
  if (s.rectangle_tests > 0) out->extra["rect_tests"] = s.rectangle_tests;
  if (s.hull_tests > 0) out->extra["hull_tests"] = s.hull_tests;
  if (s.index_window_queries > 0) {
    out->extra["window_queries"] = s.index_window_queries;
  }
  if (s.regroup_rounds > 0) out->extra["regroup_rounds"] = s.regroup_rounds;
  PublishWorkerBreakdown(s.parallel_partitions, s.workers, out);
}

void PublishSgbAnyStats(const core::SgbAnyStats& s, OperatorStats* out) {
  out->extra["dist_comps"] = s.distance_computations;
  if (s.index_window_queries > 0) {
    out->extra["window_queries"] = s.index_window_queries;
  }
  if (s.union_operations > 0) out->extra["union_ops"] = s.union_operations;
  if (s.group_merges > 0) out->extra["group_merges"] = s.group_merges;
  PublishWorkerBreakdown(s.parallel_partitions, s.workers, out);
}

/// Shared driver for the 2-D and 1-D variants: drains the child, labels
/// every row with a group id (or "no group"), then aggregates per group.
class SgbOperatorBase : public Operator {
 public:
  SgbOperatorBase(OperatorPtr child, std::vector<AggregateSpec> aggregates)
      : child_(std::move(child)), aggregates_(std::move(aggregates)) {
    Schema s;
    s.AddColumn(Column{"group_id", DataType::kInt64, ""});
    for (const AggregateSpec& a : aggregates_) {
      s.AddColumn(Column{a.output_name, AggregateOutputType(a.kind), ""});
    }
    schema_ = std::move(s);
  }

  const Schema& schema() const override { return schema_; }

  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  void OpenImpl() override {
    child_->Open();
    rows_.clear();
    results_.clear();
    next_ = 0;

    RowBatch batch;
    while (child_->NextBatch(&batch)) {
      for (Row& row : batch.rows()) rows_.push_back(std::move(row));
    }
    ChargeMemory(ApproxRowVectorBytes(rows_));
    {
      Status fault = g_sgb_build_fault.Check();
      if (!fault.ok()) throw QueryAbort(std::move(fault));
    }

    size_t num_groups = 0;
    const std::vector<size_t> group_of = Label(rows_, &num_groups);
    mutable_stats().extra["groups"] = num_groups;

    std::vector<std::vector<std::unique_ptr<AggregateState>>> states(
        num_groups);
    for (auto& group_states : states) {
      group_states.reserve(aggregates_.size());
      for (const AggregateSpec& a : aggregates_) {
        group_states.push_back(CreateAggregateState(a));
      }
    }
    for (size_t i = 0; i < rows_.size(); ++i) {
      const size_t g = group_of[i];
      if (g == kNoGroup) continue;
      for (auto& state : states[g]) state->Add(rows_[i]);
    }
    results_.reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      Row out;
      out.reserve(1 + aggregates_.size());
      out.push_back(Value::Int(static_cast<int64_t>(g)));
      for (const auto& state : states[g]) out.push_back(state->Finalize());
      results_.push_back(std::move(out));
    }
    rows_.clear();
    ChargeMemory(ApproxRowVectorBytes(results_));
  }

  bool NextImpl(Row* out) override {
    if (next_ >= results_.size()) return false;
    *out = std::move(results_[next_++]);
    return true;
  }

  bool NextBatchImpl(RowBatch* out) override {
    const size_t end = std::min(results_.size(), next_ + out->capacity());
    for (; next_ < end; ++next_) out->Append(std::move(results_[next_]));
    return !out->empty();
  }

 protected:
  static constexpr size_t kNoGroup = static_cast<size_t>(-1);

  /// Assigns a group id in [0, *num_groups) — or kNoGroup — to every row.
  /// Implementations publish their core-algorithm counters (distance
  /// computations, rectangle tests, ...) into mutable_stats().extra.
  virtual std::vector<size_t> Label(const std::vector<Row>& rows,
                                    size_t* num_groups) = 0;

 private:
  OperatorPtr child_;
  std::vector<AggregateSpec> aggregates_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<Row> results_;
  size_t next_ = 0;
};

class SgbOperator2d final : public SgbOperatorBase {
 public:
  SgbOperator2d(OperatorPtr child, ExprPtr x_expr, ExprPtr y_expr,
                SgbMode mode, std::vector<AggregateSpec> aggregates)
      : SgbOperatorBase(std::move(child), std::move(aggregates)),
        x_expr_(std::move(x_expr)),
        y_expr_(std::move(y_expr)),
        mode_(std::move(mode)) {}

  std::string name() const override {
    return std::holds_alternative<core::SgbAllOptions>(mode_)
               ? "SimilarityGroupByAll"
               : "SimilarityGroupByAny";
  }

  std::string label() const override { return name() + DescribeMode(mode_); }

 protected:
  std::vector<size_t> Label(const std::vector<Row>& rows,
                            size_t* num_groups) override {
    std::vector<geom::Point> points;
    std::vector<size_t> point_row;  // input row of each grouped point
    points.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value x = x_expr_->Evaluate(rows[i]);
      const Value y = y_expr_->Evaluate(rows[i]);
      if (x.is_null() || y.is_null()) continue;
      points.push_back(geom::Point{x.ToDouble(), y.ToDouble()});
      point_row.push_back(i);
    }

    core::Grouping grouping;
    if (const auto* all = std::get_if<core::SgbAllOptions>(&mode_)) {
      core::SgbAllOptions opts = *all;
      opts.query_ctx = query_context();
      core::SgbAllStats core_stats;
      Result<core::Grouping> r = core::SgbAll(points, opts, &core_stats);
      PublishSgbAllStats(core_stats, &mutable_stats());
      // Options are validated at plan time, so a non-OK result here is a
      // governance abort (cancel/deadline/budget/fault) from the core.
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r.value());
    } else {
      core::SgbAnyOptions opts = std::get<core::SgbAnyOptions>(mode_);
      opts.query_ctx = query_context();
      core::SgbAnyStats core_stats;
      Result<core::Grouping> r = core::SgbAny(points, opts, &core_stats);
      PublishSgbAnyStats(core_stats, &mutable_stats());
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r.value());
    }

    std::vector<size_t> group_of(rows.size(), kNoGroup);
    for (size_t k = 0; k < point_row.size(); ++k) {
      if (grouping.group_of[k] != core::Grouping::kEliminated) {
        group_of[point_row[k]] = grouping.group_of[k];
      }
    }
    *num_groups = grouping.num_groups;
    return group_of;
  }

 private:
  ExprPtr x_expr_;
  ExprPtr y_expr_;
  SgbMode mode_;
};

class SgbOperator3d final : public SgbOperatorBase {
 public:
  SgbOperator3d(OperatorPtr child, ExprPtr x_expr, ExprPtr y_expr,
                ExprPtr z_expr, SgbMode mode,
                std::vector<AggregateSpec> aggregates)
      : SgbOperatorBase(std::move(child), std::move(aggregates)),
        x_expr_(std::move(x_expr)),
        y_expr_(std::move(y_expr)),
        z_expr_(std::move(z_expr)),
        mode_(std::move(mode)) {}

  std::string name() const override {
    return std::holds_alternative<core::SgbAllOptions>(mode_)
               ? "SimilarityGroupByAll3d"
               : "SimilarityGroupByAny3d";
  }

  std::string label() const override { return name() + DescribeMode(mode_); }

 protected:
  std::vector<size_t> Label(const std::vector<Row>& rows,
                            size_t* num_groups) override {
    std::vector<geom::PointN<3>> points;
    std::vector<size_t> point_row;
    points.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value x = x_expr_->Evaluate(rows[i]);
      const Value y = y_expr_->Evaluate(rows[i]);
      const Value z = z_expr_->Evaluate(rows[i]);
      if (x.is_null() || y.is_null() || z.is_null()) continue;
      points.push_back(
          geom::PointN<3>{{x.ToDouble(), y.ToDouble(), z.ToDouble()}});
      point_row.push_back(i);
    }

    core::Grouping grouping;
    if (const auto* all = std::get_if<core::SgbAllOptions>(&mode_)) {
      core::SgbAllOptions opts = *all;
      opts.query_ctx = query_context();
      core::SgbAllStats core_stats;
      Result<core::Grouping> r = core::SgbAllNd<3>(points, opts, &core_stats);
      PublishSgbAllStats(core_stats, &mutable_stats());
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r).value();
    } else {
      core::SgbAnyOptions opts = std::get<core::SgbAnyOptions>(mode_);
      opts.query_ctx = query_context();
      core::SgbAnyStats core_stats;
      Result<core::Grouping> r = core::SgbAnyNd<3>(points, opts, &core_stats);
      PublishSgbAnyStats(core_stats, &mutable_stats());
      if (!r.ok()) throw QueryAbort(r.status());
      grouping = std::move(r).value();
    }

    std::vector<size_t> group_of(rows.size(), kNoGroup);
    for (size_t k = 0; k < point_row.size(); ++k) {
      if (grouping.group_of[k] != core::Grouping::kEliminated) {
        group_of[point_row[k]] = grouping.group_of[k];
      }
    }
    *num_groups = grouping.num_groups;
    return group_of;
  }

 private:
  ExprPtr x_expr_;
  ExprPtr y_expr_;
  ExprPtr z_expr_;
  SgbMode mode_;
};

class SgbOperator1d final : public SgbOperatorBase {
 public:
  SgbOperator1d(OperatorPtr child, ExprPtr value_expr, Sgb1dMode mode,
                std::vector<AggregateSpec> aggregates)
      : SgbOperatorBase(std::move(child), std::move(aggregates)),
        value_expr_(std::move(value_expr)),
        mode_(std::move(mode)) {}

  std::string name() const override { return "SimilarityGroupBy1d"; }

 protected:
  std::vector<size_t> Label(const std::vector<Row>& rows,
                            size_t* num_groups) override {
    std::vector<double> values;
    std::vector<size_t> value_row;
    values.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value v = value_expr_->Evaluate(rows[i]);
      if (v.is_null() || !v.IsNumeric()) continue;
      values.push_back(v.ToDouble());
      value_row.push_back(i);
    }

    Result<core::Grouping1D> r = [&]() -> Result<core::Grouping1D> {
      if (const auto* u = std::get_if<Sgb1dUnsupervised>(&mode_)) {
        return core::SgbUnsupervised(values, u->max_separation,
                                     u->max_diameter);
      }
      if (const auto* a = std::get_if<Sgb1dAround>(&mode_)) {
        return core::SgbAround(values, a->centers, a->max_separation,
                               a->max_diameter);
      }
      const auto& d = std::get<Sgb1dDelimited>(mode_);
      return core::SgbDelimited(values, d.delimiters);
    }();
    const core::Grouping1D grouping =
        r.ok() ? std::move(r.value()) : core::Grouping1D{};

    std::vector<size_t> group_of(rows.size(), kNoGroup);
    for (size_t k = 0; k < value_row.size(); ++k) {
      if (grouping.group_of[k] != core::Grouping1D::kUngrouped) {
        group_of[value_row[k]] = grouping.group_of[k];
      }
    }
    *num_groups = grouping.num_groups;
    return group_of;
  }

 private:
  ExprPtr value_expr_;
  Sgb1dMode mode_;
};

}  // namespace

OperatorPtr MakeSimilarityGroupBy(OperatorPtr child, ExprPtr x_expr,
                                  ExprPtr y_expr, SgbMode mode,
                                  std::vector<AggregateSpec> aggregates) {
  return std::make_unique<SgbOperator2d>(std::move(child), std::move(x_expr),
                                         std::move(y_expr), std::move(mode),
                                         std::move(aggregates));
}

OperatorPtr MakeSimilarityGroupBy3d(OperatorPtr child, ExprPtr x_expr,
                                    ExprPtr y_expr, ExprPtr z_expr,
                                    SgbMode mode,
                                    std::vector<AggregateSpec> aggregates) {
  return std::make_unique<SgbOperator3d>(
      std::move(child), std::move(x_expr), std::move(y_expr),
      std::move(z_expr), std::move(mode), std::move(aggregates));
}

OperatorPtr MakeSimilarityGroupBy1d(OperatorPtr child, ExprPtr value_expr,
                                    Sgb1dMode mode,
                                    std::vector<AggregateSpec> aggregates) {
  return std::make_unique<SgbOperator1d>(std::move(child),
                                         std::move(value_expr),
                                         std::move(mode),
                                         std::move(aggregates));
}

}  // namespace sgb::engine
