#include "engine/table.h"

#include <algorithm>

#include "common/fault_injection.h"

namespace sgb::engine {

// The storage growth path: every materialized result row lands here, so an
// armed fault simulates running out of table storage mid-query.
static FaultSite g_table_append_fault("engine.table.append",
                                      Status::Code::kResourceExhausted);

Status Table::Append(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  SGB_RETURN_IF_ERROR(g_table_append_fault.Check());
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string Table::ToString(size_t max_rows) const {
  const size_t ncols = schema_.size();
  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> width(ncols, 0);

  std::vector<std::string> header(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    header[c] = schema_.column(c).name;
    width[c] = header[c].size();
  }
  const size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      line[c] = rows_[r][c].ToString();
      width[c] = std::max(width[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }

  auto emit_row = [&](const std::vector<std::string>& line, std::string* out) {
    for (size_t c = 0; c < ncols; ++c) {
      *out += "| ";
      *out += line[c];
      out->append(width[c] - line[c].size() + 1, ' ');
    }
    *out += "|\n";
  };

  std::string out;
  emit_row(header, &out);
  for (size_t c = 0; c < ncols; ++c) {
    out += '+';
    out.append(width[c] + 2, '-');
  }
  out += "+\n";
  for (const auto& line : cells) emit_row(line, &out);
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace sgb::engine
