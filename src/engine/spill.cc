#include "engine/spill.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "storage/file_registry.h"

namespace sgb::engine {

// Fire on the buffered-flush / buffered-refill paths, so a failing disk
// surfaces mid-spill (the regime where orphan temp files and half-written
// partitions would otherwise go unnoticed).
static FaultSite g_spill_write_fault("engine.spill.write",
                                     Status::Code::kIoError);
static FaultSite g_spill_read_fault("engine.spill.read",
                                    Status::Code::kIoError);

namespace {

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool ReadVarint(const char* data, size_t size, size_t* offset, uint64_t* v) {
  uint64_t value = 0;
  int shift = 0;
  while (*offset < size && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(data[(*offset)++]);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Value type tags; stable on-disk format within one process lifetime.
enum : uint8_t { kTagNull = 0, kTagInt64 = 1, kTagDouble = 2, kTagString = 3 };

void AppendFixed64(uint64_t bits, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(bits >> (8 * i));
  out->append(buf, 8);
}

bool ReadFixed64(const char* data, size_t size, size_t* offset,
                 uint64_t* bits) {
  if (size - *offset < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *bits = v;
  return true;
}

}  // namespace

void EncodeRow(const Row& row, std::string* out) {
  AppendVarint(row.size(), out);
  for (const Value& v : row) {
    switch (v.type()) {
      case DataType::kNull:
        out->push_back(static_cast<char>(kTagNull));
        break;
      case DataType::kInt64:
        out->push_back(static_cast<char>(kTagInt64));
        AppendFixed64(static_cast<uint64_t>(v.AsInt()), out);
        break;
      case DataType::kDouble: {
        out->push_back(static_cast<char>(kTagDouble));
        uint64_t bits;
        const double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof bits);  // exact, incl. NaN payloads
        AppendFixed64(bits, out);
        break;
      }
      case DataType::kString: {
        out->push_back(static_cast<char>(kTagString));
        const std::string& s = v.AsString();
        AppendVarint(s.size(), out);
        out->append(s);
        break;
      }
    }
  }
}

Status DecodeRow(const char* data, size_t size, size_t* offset, Row* out) {
  out->clear();
  uint64_t cols = 0;
  if (!ReadVarint(data, size, offset, &cols)) {
    return Status::IoError("spill codec: truncated row header");
  }
  out->reserve(cols);
  for (uint64_t c = 0; c < cols; ++c) {
    if (*offset >= size) {
      return Status::IoError("spill codec: truncated value tag");
    }
    const uint8_t tag = static_cast<uint8_t>(data[(*offset)++]);
    switch (tag) {
      case kTagNull:
        out->push_back(Value::Null());
        break;
      case kTagInt64: {
        uint64_t bits;
        if (!ReadFixed64(data, size, offset, &bits)) {
          return Status::IoError("spill codec: truncated int64");
        }
        out->push_back(Value::Int(static_cast<int64_t>(bits)));
        break;
      }
      case kTagDouble: {
        uint64_t bits;
        if (!ReadFixed64(data, size, offset, &bits)) {
          return Status::IoError("spill codec: truncated double");
        }
        double d;
        std::memcpy(&d, &bits, sizeof d);
        out->push_back(Value::Double(d));
        break;
      }
      case kTagString: {
        uint64_t len;
        if (!ReadVarint(data, size, offset, &len) || size - *offset < len) {
          return Status::IoError("spill codec: truncated string");
        }
        out->push_back(Value::Str(std::string(data + *offset, len)));
        *offset += len;
        break;
      }
      default:
        return Status::IoError("spill codec: unknown value tag " +
                               std::to_string(tag));
    }
  }
  return Status::OK();
}

// ---- SpillFile ----------------------------------------------------------

std::string SpillFile::SpillDirectory() {
  for (const char* var : {"SGB_SPILL_DIR", "TMPDIR"}) {
    const char* v = std::getenv(var);
    if (v != nullptr && *v != '\0') return v;
  }
  return "/tmp";
}

uint64_t SpillFile::LiveFileCount() {
  // Spill names and live counts come from the shared storage FileRegistry
  // (one namespace with segment page files and WALs), so this probe and the
  // registry's total stay consistent.
  return storage::FileRegistry::Global().LiveCount(
      storage::FileRegistry::kSpill);
}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir) {
  const std::string base = dir.empty() ? SpillDirectory() : dir;
  std::string path = storage::FileRegistry::Global().MakeTempName(
      base, storage::FileRegistry::kSpill);
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::IoError("spill: cannot create temp file " + path);
  }
  obs::MetricsRegistry::Global().GetCounter("spill.files").Add(1);
  return std::unique_ptr<SpillFile>(new SpillFile(std::move(path), file));
}

SpillFile::SpillFile(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {
  storage::FileRegistry::Global().Acquire(storage::FileRegistry::kSpill);
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
  storage::FileRegistry::Global().Release(storage::FileRegistry::kSpill);
}

Status SpillFile::Append(const Row& row) {
  EncodeRow(row, &write_buffer_);
  ++rows_;
  if (write_buffer_.size() >= kBufferBytes) {
    SGB_RETURN_IF_ERROR(FlushWriteBuffer());
  }
  return Status::OK();
}

Status SpillFile::FlushWriteBuffer() {
  SGB_RETURN_IF_ERROR(g_spill_write_fault.Check());
  if (!write_buffer_.empty()) {
    const size_t n =
        std::fwrite(write_buffer_.data(), 1, write_buffer_.size(), file_);
    if (n != write_buffer_.size()) {
      return Status::IoError("spill: short write to " + path_);
    }
    bytes_ += write_buffer_.size();
    obs::MetricsRegistry::Global()
        .GetCounter("spill.bytes")
        .Add(write_buffer_.size());
    write_buffer_.clear();
  }
  return Status::OK();
}

Status SpillFile::FinishWrites() {
  if (finished_) return Status::OK();
  SGB_RETURN_IF_ERROR(FlushWriteBuffer());
  if (std::fflush(file_) != 0) {
    return Status::IoError("spill: flush failed on " + path_);
  }
  finished_ = true;
  return Rewind();
}

Status SpillFile::Rewind() {
  if (!finished_) {
    return Status::Internal("spill: Rewind before FinishWrites on " + path_);
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IoError("spill: seek failed on " + path_);
  }
  read_buffer_.clear();
  read_offset_ = 0;
  eof_ = false;
  return Status::OK();
}

Status SpillFile::RefillReadBuffer() {
  SGB_RETURN_IF_ERROR(g_spill_read_fault.Check());
  // Keep the unconsumed tail (a row can straddle a buffer boundary).
  read_buffer_.erase(0, read_offset_);
  read_offset_ = 0;
  const size_t old = read_buffer_.size();
  read_buffer_.resize(old + kBufferBytes);
  const size_t n = std::fread(read_buffer_.data() + old, 1, kBufferBytes,
                              file_);
  read_buffer_.resize(old + n);
  if (n == 0) {
    if (std::ferror(file_) != 0) {
      return Status::IoError("spill: read failed on " + path_);
    }
    eof_ = true;
  }
  return Status::OK();
}

Result<bool> SpillFile::Next(Row* out) {
  if (!finished_) {
    return Status::Internal("spill: Next before FinishWrites on " + path_);
  }
  while (true) {
    size_t offset = read_offset_;
    Status decoded = DecodeRow(read_buffer_.data(), read_buffer_.size(),
                               &offset, out);
    if (decoded.ok()) {
      read_offset_ = offset;
      return true;
    }
    // A decode failure at the buffer edge means "need more bytes" — unless
    // the file is already drained, in which case leftover bytes are real
    // corruption.
    if (eof_) {
      if (read_offset_ >= read_buffer_.size()) return false;
      return decoded;
    }
    SGB_RETURN_IF_ERROR(RefillReadBuffer());
  }
}

// ---- SpillPartitionSet --------------------------------------------------

SpillPartitionSet::SpillPartitionSet(size_t fanout, int level,
                                     std::string dir)
    : level_(level), dir_(std::move(dir)) {
  partitions_.resize(fanout == 0 ? 1 : fanout);
}

size_t SpillPartitionSet::PartitionOf(size_t key_hash, int level,
                                      size_t fanout) {
  // SplitMix64 finalizer over the level-salted hash: each level slices the
  // key space with an independent permutation.
  uint64_t z = static_cast<uint64_t>(key_hash) +
               0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(level + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<size_t>(z % fanout);
}

Status SpillPartitionSet::Add(size_t key_hash, const Row& row) {
  const size_t p = PartitionOf(key_hash, level_, partitions_.size());
  if (partitions_[p] == nullptr) {
    auto file = SpillFile::Create(dir_);
    if (!file.ok()) return file.status();
    partitions_[p] = std::move(file).value();
  }
  SGB_RETURN_IF_ERROR(partitions_[p]->Append(row));
  ++rows_;
  return Status::OK();
}

Status SpillPartitionSet::FinishWrites() {
  for (auto& partition : partitions_) {
    if (partition != nullptr) SGB_RETURN_IF_ERROR(partition->FinishWrites());
  }
  return Status::OK();
}

uint64_t SpillPartitionSet::bytes() const {
  uint64_t total = 0;
  for (const auto& partition : partitions_) {
    if (partition != nullptr) total += partition->bytes();
  }
  return total;
}

}  // namespace sgb::engine
