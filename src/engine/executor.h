#ifndef SGB_ENGINE_EXECUTOR_H_
#define SGB_ENGINE_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/operators.h"
#include "obs/trace.h"
#include "sql/planner.h"

namespace sgb::engine {

/// Top-level facade tying the SQL front end to the engine: register tables,
/// run SQL strings, get materialized results. This is the entry point the
/// examples and the SQL-level benchmarks use.
///
///   Database db;
///   db.Register("gpspoints", table);
///   auto result = db.Query(
///       "SELECT count(*) FROM gpspoints "
///       "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 "
///       "ON-OVERLAP ELIMINATE");
///
/// Observability: every Query() run bumps `engine.queries` and records its
/// wall time into the `engine.query_us` histogram of the global
/// obs::MetricsRegistry. Passing a QueryTrace collects a structured span
/// hierarchy (parse / plan / execute) for the run, and
/// `EXPLAIN ANALYZE <select>` — via Query() or ExplainAnalyze() — executes
/// the plan and renders every operator annotated with rows, wall time,
/// peak memory, and operator-specific counters (e.g. SGB distance
/// computations).
class Database {
 public:
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  void Register(const std::string& name, TablePtr table) {
    catalog_.Register(name, std::move(table));
  }

  /// Parses + plans the SQL (ignoring any EXPLAIN prefix); the returned
  /// operator can be Open()/Next()ed repeatedly.
  Result<OperatorPtr> Prepare(const std::string& sql) const;

  /// Parses, plans and fully materializes the result table. A statement
  /// prefixed with EXPLAIN [ANALYZE] instead returns a single-column
  /// `plan` table holding the (annotated) plan, one row per line.
  Result<Table> Query(const std::string& sql,
                      obs::QueryTrace* trace = nullptr) const;

  /// EXPLAIN: renders the physical plan the SQL would execute. Accepts the
  /// bare SELECT or the EXPLAIN-prefixed form.
  Result<std::string> Explain(const std::string& sql) const;

  /// EXPLAIN ANALYZE: plans, executes (discarding rows), and renders the
  /// plan annotated with per-operator execution counters. Accepts the bare
  /// SELECT or the EXPLAIN ANALYZE-prefixed form.
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     obs::QueryTrace* trace = nullptr) const;

  /// Session default degree of parallelism for SGB operators (1 = serial,
  /// k > 1 = up to k workers, 0 = auto). Applies to queries without an
  /// explicit PARALLEL clause; grouping results are identical at every
  /// setting (docs/PARALLELISM.md).
  void set_default_sgb_dop(int dop) { planner_options_.default_sgb_dop = dop; }
  int default_sgb_dop() const { return planner_options_.default_sgb_dop; }

 private:
  Catalog catalog_;
  sql::PlannerOptions planner_options_;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_EXECUTOR_H_
