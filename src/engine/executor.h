#ifndef SGB_ENGINE_EXECUTOR_H_
#define SGB_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/operators.h"
#include "obs/trace.h"
#include "sql/planner.h"

namespace sgb::engine {

/// Top-level facade tying the SQL front end to the engine: register tables,
/// run SQL strings, get materialized results. This is the entry point the
/// examples and the SQL-level benchmarks use.
///
///   Database db;
///   db.Register("gpspoints", table);
///   auto result = db.Query(
///       "SELECT count(*) FROM gpspoints "
///       "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 "
///       "ON-OVERLAP ELIMINATE");
///
/// Observability: every Query() run bumps `engine.queries` and records its
/// wall time into the `engine.query_us` histogram of the global
/// obs::MetricsRegistry. Passing a QueryTrace collects a structured span
/// hierarchy (parse / plan / execute) for the run, and
/// `EXPLAIN ANALYZE <select>` — via Query() or ExplainAnalyze() — executes
/// the plan and renders every operator annotated with rows, wall time,
/// peak memory, and operator-specific counters (e.g. SGB distance
/// computations).
class Database {
 public:
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  void Register(const std::string& name, TablePtr table) {
    catalog_.Register(name, std::move(table));
  }

  /// Parses + plans the SQL (ignoring any EXPLAIN prefix); the returned
  /// operator can be Open()/Next()ed repeatedly.
  Result<OperatorPtr> Prepare(const std::string& sql) const;

  /// Parses, plans and fully materializes the result table. A statement
  /// prefixed with EXPLAIN [ANALYZE] instead returns a single-column
  /// `plan` table holding the (annotated) plan, one row per line.
  Result<Table> Query(const std::string& sql,
                      obs::QueryTrace* trace = nullptr) const;

  /// EXPLAIN: renders the physical plan the SQL would execute. Accepts the
  /// bare SELECT or the EXPLAIN-prefixed form.
  Result<std::string> Explain(const std::string& sql) const;

  /// EXPLAIN ANALYZE: plans, executes (discarding rows), and renders the
  /// plan annotated with per-operator execution counters. Accepts the bare
  /// SELECT or the EXPLAIN ANALYZE-prefixed form.
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     obs::QueryTrace* trace = nullptr) const;

  /// Session default degree of parallelism for SGB operators (1 = serial,
  /// k > 1 = up to k workers, 0 = auto). Applies to queries without an
  /// explicit PARALLEL clause; grouping results are identical at every
  /// setting (docs/PARALLELISM.md).
  void set_default_sgb_dop(int dop) { planner_options_.default_sgb_dop = dop; }
  int default_sgb_dop() const { return planner_options_.default_sgb_dop; }

  // ---- Governance (docs/ROBUSTNESS.md) ----------------------------------
  //
  // Each Query() run executes under a QueryContext: a per-query
  // MemoryTracker (parented to MemoryTracker::EngineGlobal()) bounded by
  // the session budget, plus a cancel flag and wall-clock deadline checked
  // cooperatively at batch/morsel granularity. Breaches surface as
  // Status::ResourceExhausted / DeadlineExceeded / Cancelled — the engine
  // never OOMs or wedges on a runaway query. The knobs are also reachable
  // from SQL: `SET timeout = <ms>`, `SET memory_budget = <bytes>`,
  // `SET parallel = <dop>`.

  /// Wall-clock timeout applied to each subsequent query (0 = none).
  void set_timeout_ms(int64_t ms) { governance_.timeout_ms = ms; }
  int64_t timeout_ms() const { return governance_.timeout_ms; }

  /// Per-query memory budget in bytes (0 = unlimited).
  void set_memory_budget_bytes(size_t bytes) {
    governance_.memory_budget_bytes = bytes;
  }
  size_t memory_budget_bytes() const {
    return governance_.memory_budget_bytes;
  }

  /// Cooperatively cancels every query currently executing on this
  /// Database. Callable from any thread; the running queries fail with
  /// Status::Cancelled at their next governance check and the Database
  /// remains fully usable afterwards.
  void Cancel() const;

 private:
  struct Governance {
    int64_t timeout_ms = 0;            ///< 0 = no deadline
    size_t memory_budget_bytes = 0;    ///< 0 = unlimited
  };

  Result<Table> ApplySet(const sql::SetStatement& set) const;

  /// Executes `root` under a fresh QueryContext built from the session
  /// governance, maintaining the active-query registry and the `mem.*` /
  /// `query.*` metrics. `peak_bytes`, when non-null, receives the query's
  /// peak tracked memory (the EXPLAIN ANALYZE `peak_mem=` value).
  Result<Table> RunPlan(Operator& root, obs::QueryTrace* trace,
                        size_t* peak_bytes) const;

  /// Registry of the queries executing right now; behind a shared_ptr so
  /// Database stays movable (tests build and return them by value).
  struct ActiveQueries {
    std::mutex mu;
    std::vector<QueryContext*> contexts;
  };

  Catalog catalog_;
  // Mutable: Query() is const but SET statements adjust session state.
  mutable sql::PlannerOptions planner_options_;
  mutable Governance governance_;
  std::shared_ptr<ActiveQueries> active_ = std::make_shared<ActiveQueries>();
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_EXECUTOR_H_
