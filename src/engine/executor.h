#ifndef SGB_ENGINE_EXECUTOR_H_
#define SGB_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/continuous.h"
#include "engine/operators.h"
#include "engine/session.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sql/planner.h"
#include "storage/storage_engine.h"

namespace sgb::engine {

/// Top-level facade tying the SQL front end to the engine: register tables,
/// run SQL strings, get materialized results. This is the entry point the
/// examples, the SQL-level benchmarks, and the server front end use.
///
///   Database db;
///   db.Register("gpspoints", table);
///   auto result = db.Query(
///       "SELECT count(*) FROM gpspoints "
///       "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 "
///       "ON-OVERLAP ELIMINATE");
///
/// Concurrency (docs/SERVER.md): a Database hosts many Sessions, each with
/// its own governance knobs, plan cache, and prepared statements; every
/// session-less legacy call runs on a built-in default session, so the
/// historical single-session API is unchanged. Statements from different
/// sessions execute concurrently; DDL-created tables are append-only and
/// scanned through pinned snapshots, so readers never block writers and
/// never observe a torn INSERT.
///
/// Observability: every Query() run bumps `engine.queries` and records its
/// wall time into the `engine.query_us` histogram of the global
/// obs::MetricsRegistry. Passing a QueryTrace collects a structured span
/// hierarchy (parse / plan / execute) for the run, and
/// `EXPLAIN ANALYZE <select>` — via Query() or ExplainAnalyze() — executes
/// the plan and renders every operator annotated with rows, wall time,
/// peak memory, and operator-specific counters (e.g. SGB distance
/// computations).
class Database {
 public:
  Database();

  /// Opens (or creates) a *disk-backed* database rooted at `directory`
  /// (docs/STORAGE.md). CREATE TABLE / INSERT / DROP TABLE run against the
  /// paged storage engine: rows land in slotted pages cached by a buffer
  /// pool, every INSERT is WAL-logged and fsynced before it is
  /// acknowledged, and reopening the directory after a crash replays the
  /// WAL back to the exact pre-crash state. Queries are unchanged — paged
  /// tables stream through the same operators as in-memory ones.
  static Result<Database> Open(const std::string& directory,
                               const storage::StorageOptions& options = {});

  /// The paged storage engine, or null for an in-memory Database.
  storage::StorageEngine* storage() const { return storage_.get(); }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  void Register(const std::string& name, TablePtr table) {
    catalog_.Register(name, std::move(table));
  }

  // ---- Sessions (docs/SERVER.md) ----------------------------------------

  /// Creates a new session (fresh governance defaults, empty plan cache);
  /// it appears in system.sessions until released. `peer` labels the
  /// origin ("unix:fd=7", "tcp:127.0.0.1:52114", "local").
  SessionPtr CreateSession(std::string peer = "local") const {
    return std::make_shared<Session>(sessions_, std::move(peer));
  }

  /// The built-in session the legacy session-less API runs on.
  Session& default_session() const { return *default_session_; }

  /// The registry behind system.sessions.
  SessionRegistry& sessions() const { return *sessions_; }

  /// The CREATE CONTINUOUS QUERY registry (docs/STREAMING.md): incremental
  /// window maintenance, delta subscriptions (the server's SUBSCRIBE verb),
  /// and the system.continuous_queries surface.
  ContinuousQueryManager& continuous() const { return *continuous_; }

  /// Parses + plans the SQL (ignoring any EXPLAIN prefix); the returned
  /// operator can be Open()/Next()ed repeatedly.
  Result<OperatorPtr> Prepare(const std::string& sql) const;

  /// Parses, plans and fully materializes the result table on the default
  /// session. A statement prefixed with EXPLAIN [ANALYZE] instead returns
  /// a single-column `plan` table holding the (annotated) plan, one row
  /// per line.
  Result<Table> Query(const std::string& sql,
                      obs::QueryTrace* trace = nullptr) const {
    return Query(*default_session_, sql, trace);
  }

  /// Runs one statement on `session`: SELECT (cached plans are reused),
  /// EXPLAIN [ANALYZE], PROFILE, SET, CREATE TABLE, INSERT, DROP TABLE.
  Result<Table> Query(Session& session, const std::string& sql,
                      obs::QueryTrace* trace = nullptr) const;

  /// EXPLAIN: renders the physical plan the SQL would execute. Accepts the
  /// bare SELECT or the EXPLAIN-prefixed form.
  Result<std::string> Explain(const std::string& sql) const;

  /// EXPLAIN ANALYZE: plans, executes (discarding rows), and renders the
  /// plan annotated with per-operator execution counters. Accepts the bare
  /// SELECT or the EXPLAIN ANALYZE-prefixed form.
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     obs::QueryTrace* trace = nullptr) const;

  /// Validates `sql` (parse + plan; must be a result-producing statement)
  /// and binds it to `name` on the session; the plan cache is warmed, so
  /// the first ExecutePrepared skips planning.
  Status PrepareStatement(Session& session, const std::string& name,
                          const std::string& sql) const;

  /// Runs a statement previously bound with PrepareStatement.
  Result<Table> ExecutePrepared(Session& session, const std::string& name,
                                obs::QueryTrace* trace = nullptr) const;

  /// Session default degree of parallelism for SGB operators (1 = serial,
  /// k > 1 = up to k workers, 0 = auto). Applies to queries without an
  /// explicit PARALLEL clause; grouping results are identical at every
  /// setting (docs/PARALLELISM.md).
  void set_default_sgb_dop(int dop) {
    default_session_->set_default_sgb_dop(dop);
  }
  int default_sgb_dop() const { return default_session_->default_sgb_dop(); }

  // ---- Governance (docs/ROBUSTNESS.md) ----------------------------------
  //
  // Each Query() run executes under a QueryContext: a per-query
  // MemoryTracker (parented to MemoryTracker::EngineGlobal()) bounded by
  // the session budget, plus a cancel flag and wall-clock deadline checked
  // cooperatively at batch/morsel granularity. Breaches surface as
  // Status::ResourceExhausted / DeadlineExceeded / Cancelled — the engine
  // never OOMs or wedges on a runaway query. The knobs are also reachable
  // from SQL: `SET timeout = <ms>`, `SET memory_budget = <bytes>`,
  // `SET parallel = <dop>`. They are per-session; these accessors adjust
  // the default session.

  /// Wall-clock timeout applied to each subsequent query (0 = none).
  void set_timeout_ms(int64_t ms) { default_session_->set_timeout_ms(ms); }
  int64_t timeout_ms() const { return default_session_->timeout_ms(); }

  /// Per-query memory budget in bytes (0 = unlimited).
  void set_memory_budget_bytes(size_t bytes) {
    default_session_->set_memory_budget_bytes(bytes);
  }
  size_t memory_budget_bytes() const {
    return default_session_->memory_budget_bytes();
  }

  /// Out-of-core fallback (`SET spill = 1`): when enabled, the blocking
  /// operators (hash aggregate/join, sort, the SGB drain) spill to temp
  /// files on a budget breach and retry per-partition instead of failing
  /// with ResourceExhausted. Results are unchanged; EXPLAIN ANALYZE gains
  /// `spilled=` / `spill_bytes=` lines when a query spilled.
  void set_spill_enabled(bool enabled) {
    default_session_->set_spill_enabled(enabled);
  }
  bool spill_enabled() const { return default_session_->spill_enabled(); }

  /// Spill temp-file directory (empty = SGB_SPILL_DIR / TMPDIR / /tmp).
  void set_spill_directory(std::string dir) {
    default_session_->set_spill_directory(std::move(dir));
  }
  std::string spill_directory() const {
    return default_session_->spill_directory();
  }

  /// Admission control (`SET admission = queue|shed|off`): gate each query
  /// at plan time on its estimated footprint against the engine headroom.
  void set_admission_mode(AdmissionMode mode) {
    default_session_->set_admission_mode(mode);
  }
  AdmissionMode admission_mode() const {
    return default_session_->admission_mode();
  }

  /// Admission headroom in bytes; 0 falls back to the engine-global
  /// tracker's limit (SGB_ENGINE_MEMORY_LIMIT). With both zero, admission
  /// is a no-op even when a mode is set.
  void set_admission_budget_bytes(size_t bytes) {
    default_session_->set_admission_budget_bytes(bytes);
  }
  size_t admission_budget_bytes() const {
    return default_session_->admission_budget_bytes();
  }

  /// Cooperatively cancels every query currently executing on this
  /// Database — all sessions. Callable from any thread; the running
  /// queries fail with Status::Cancelled at their next governance check
  /// and the Database remains fully usable afterwards. To cancel one
  /// session's queries only, use Session::CancelActive().
  void Cancel() const;

  // ---- Introspection (docs/OBSERVABILITY.md) ----------------------------
  //
  // Every executed statement — whatever its outcome — lands in the query
  // log, queryable as `SELECT * FROM system.query_log` alongside
  // system.metrics, system.operator_stats, system.tables, and
  // system.sessions. `PROFILE <select>` executes the statement and returns
  // its span tree as rows. `SET trace = 1` additionally accumulates every
  // traced span into the session TraceLog for Chrome/Perfetto export.

  /// The bounded ring buffer behind system.query_log/operator_stats.
  obs::QueryLog& query_log() const { return *query_log_; }

  /// Span accumulator behind `SET trace = 1` (shared by all sessions).
  obs::TraceLog& trace_log() const { return *trace_log_; }

  /// Writes the TraceLog as Chrome trace-event JSON
  /// ({"traceEvents":[...]}, loadable in chrome://tracing / Perfetto).
  Status ExportTrace(const std::string& path) const {
    return trace_log_->WriteChromeJson(path);
  }

  /// Trace capture on the default session (`SET trace = 1`). Enabling
  /// traces has no effect on query results — only on what the TraceLog
  /// accumulates.
  void set_trace_enabled(bool enabled) {
    default_session_->set_trace_enabled(enabled);
  }
  bool trace_enabled() const { return default_session_->trace_enabled(); }

  /// Slow-query threshold in microseconds (`SET slow_query_micros = n`);
  /// statements whose wall time exceeds it are flagged `slow` in the query
  /// log and counted in `query.slow`. 0 disables the flag.
  void set_slow_query_micros(int64_t micros) {
    default_session_->set_slow_query_micros(micros);
  }
  int64_t slow_query_micros() const {
    return default_session_->slow_query_micros();
  }

 private:
  /// Per-run governance outcomes surfaced to EXPLAIN ANALYZE.
  struct RunStats {
    size_t peak_bytes = 0;
    uint64_t spill_events = 0;
    uint64_t spill_bytes = 0;
    int64_t queue_micros = 0;
    int64_t plan_micros = 0;
    int64_t exec_micros = 0;
  };

  /// Statement-level context RunPlan needs to write the query-log entry:
  /// the submitted text, the plan phase's cost, the SGB tier/DOP the
  /// statement carries, and the lifecycle start marks.
  struct StatementInfo {
    std::string text;
    int64_t plan_micros = 0;
    int64_t dop = 0;
    std::string tier = "none";
    int64_t est_rows = 0;     ///< cost-model row estimate (0 = no stats)
    size_t est_bytes = 0;     ///< cost-model footprint estimate
    std::string strategy;     ///< chosen SGB tier / group-by strategy
    std::chrono::steady_clock::time_point wall_start{};
    int64_t cpu_start_micros = 0;
  };

  Result<Table> ApplySet(Session& session,
                         const sql::SetStatement& set) const;

  /// Executes CREATE TABLE / INSERT / DROP TABLE against the catalog's
  /// append-only tables, recording one query-log entry each.
  Result<Table> ExecuteCreate(Session& session,
                              const sql::CreateTableStatement& create,
                              StatementInfo* info) const;
  Result<Table> ExecuteInsert(Session& session,
                              const sql::InsertStatement& insert,
                              StatementInfo* info) const;
  Result<Table> ExecuteDrop(Session& session,
                            const sql::DropTableStatement& drop,
                            StatementInfo* info) const;

  /// ANALYZE [table]: scans the named table (or every stored/appendable
  /// table) and installs fresh statistics in the catalog, bumping the
  /// catalog version so cached plans replan against them.
  Result<Table> ExecuteAnalyze(Session& session,
                               const sql::AnalyzeStatement& analyze,
                               StatementInfo* info) const;

  /// CREATE/DROP CONTINUOUS QUERY against the continuous-query registry
  /// (docs/STREAMING.md), recording one query-log entry each.
  Result<Table> ExecuteCreateContinuous(Session& session,
                                        sql::CreateContinuousStatement stmt,
                                        StatementInfo* info) const;
  Result<Table> ExecuteDropContinuous(Session& session,
                                      const sql::DropContinuousStatement& drop,
                                      StatementInfo* info) const;

  /// CHECKPOINT: flush dirty pages, publish a fresh manifest, truncate the
  /// WAL (docs/STORAGE.md). InvalidArgument on an in-memory Database.
  Result<Table> ExecuteCheckpoint(Session& session,
                                  StatementInfo* info) const;

  /// Admission gate: decides at plan time whether a query whose estimated
  /// footprint is `estimate` bytes may run now. Queue mode blocks until
  /// headroom frees up (bounded by the session timeout when one is set);
  /// shed mode fails fast. `*admitted` reports whether headroom was
  /// actually reserved (and must be released after the run); `*outcome`
  /// gets the query log's admission column (admitted|queued|shed),
  /// `*queue_micros` the time spent waiting, and `trace` an
  /// `admission.wait` span when the query queued.
  Status AdmitQuery(const SessionGovernance& gov, size_t estimate,
                    bool* admitted, std::string* outcome,
                    int64_t* queue_micros, obs::QueryTrace* trace) const;

  /// Executes `root` under a fresh QueryContext built from the session's
  /// governance snapshot `gov`, maintaining both the Database-wide and the
  /// session's active-query registries and the `mem.*` / `query.*`
  /// metrics, and records exactly one query-log entry whatever the
  /// outcome (ok, cancelled, timeout, mem_exceeded, shed, error).
  /// `run_stats`, when non-null, receives the query's peak tracked memory,
  /// spill totals, and phase timings (the EXPLAIN ANALYZE footer). The
  /// trace is Finish()ed and, with `SET trace = 1`, appended to the
  /// TraceLog.
  Result<Table> RunPlan(Session& session, const SessionGovernance& gov,
                        Operator& root, obs::QueryTrace* trace,
                        RunStats* run_stats, const StatementInfo& info) const;

  /// Records a query-log entry for a statement that failed before
  /// execution (parse/bind/plan errors).
  void LogFailedStatement(Session& session, const StatementInfo& info) const;

  /// Records a query-log entry for a non-plan statement (DDL/DML).
  void LogSimpleStatement(Session& session, const StatementInfo& info,
                          const Status& status, int64_t rows_out) const;

  /// Registry of the queries executing right now across every session;
  /// behind a shared_ptr so Database stays movable (tests build and
  /// return them by value).
  struct ActiveQueries {
    std::mutex mu;
    std::condition_variable cv;  ///< signaled when admitted queries finish
    std::vector<QueryContext*> contexts;
    size_t admitted_bytes = 0;   ///< estimated footprints currently admitted
  };

  Catalog catalog_;
  std::shared_ptr<ActiveQueries> active_ = std::make_shared<ActiveQueries>();
  // Behind shared_ptrs so Database stays movable: the system-table
  // providers registered on catalog_ capture these by value.
  std::shared_ptr<obs::QueryLog> query_log_ =
      std::make_shared<obs::QueryLog>();
  std::shared_ptr<obs::TraceLog> trace_log_ =
      std::make_shared<obs::TraceLog>();
  std::shared_ptr<SessionRegistry> sessions_ =
      std::make_shared<SessionRegistry>();
  std::shared_ptr<ContinuousQueryManager> continuous_ =
      std::make_shared<ContinuousQueryManager>();
  std::shared_ptr<Session> default_session_ =
      std::make_shared<Session>(sessions_, "local");
  /// Set by Open(): the paged storage engine behind a disk-backed
  /// Database. Shared so system-table providers can capture it.
  std::shared_ptr<storage::StorageEngine> storage_;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_EXECUTOR_H_
