#ifndef SGB_ENGINE_EXECUTOR_H_
#define SGB_ENGINE_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/operators.h"

namespace sgb::engine {

/// Top-level facade tying the SQL front end to the engine: register tables,
/// run SQL strings, get materialized results. This is the entry point the
/// examples and the SQL-level benchmarks use.
///
///   Database db;
///   db.Register("gpspoints", table);
///   auto result = db.Query(
///       "SELECT count(*) FROM gpspoints "
///       "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 "
///       "ON-OVERLAP ELIMINATE");
class Database {
 public:
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  void Register(const std::string& name, TablePtr table) {
    catalog_.Register(name, std::move(table));
  }

  /// Parses + plans the SQL; the returned operator can be Open()/Next()ed
  /// repeatedly.
  Result<OperatorPtr> Prepare(const std::string& sql) const;

  /// Parses, plans and fully materializes the result table.
  Result<Table> Query(const std::string& sql) const;

  /// EXPLAIN: renders the physical plan the SQL would execute.
  Result<std::string> Explain(const std::string& sql) const;

 private:
  Catalog catalog_;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_EXECUTOR_H_
