#include "engine/continuous.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "common/fault_injection.h"
#include "common/query_context.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "obs/metrics.h"

namespace sgb::engine {

namespace {

/// Checked before a window close mutates anything: an injected close
/// failure leaves the window open and fully consistent, so the next
/// INSERT retries the close (tests/engine/continuous_test.cc,
/// governance_test.cc). File scope so the site registers at startup,
/// like every other planted fault.
FaultSite g_close_fault("continuous.window_close", Status::Code::kInternal);

/// SplitMix64 finalizer, used to derive identity arbitration keys.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t FloorDiv(double value, double divisor) {
  return static_cast<int64_t>(std::floor(value / divisor));
}

const char* KindName(sql::SimilarityClause::Kind kind) {
  return kind == sql::SimilarityClause::Kind::kAll ? "all" : "any";
}

const char* MetricName(geom::Metric metric) {
  return metric == geom::Metric::kL2 ? "l2" : "linf";
}

const char* WindowKindName(sql::WindowClause::Kind kind) {
  return kind == sql::WindowClause::Kind::kTumbling ? "tumbling" : "sliding";
}

/// Resolves a bare or qualified column reference against the base table.
Status ResolveColumn(const Schema& schema, const std::string& qualifier,
                     const std::string& name, const std::string& what,
                     size_t* index) {
  const Schema::Lookup lookup = schema.Find(qualifier, name);
  if (lookup.outcome == Schema::LookupOutcome::kNotFound) {
    return Status::InvalidArgument("continuous query: " + what + " '" + name +
                                   "' not found in the base table");
  }
  if (lookup.outcome == Schema::LookupOutcome::kAmbiguous) {
    return Status::InvalidArgument("continuous query: " + what + " '" + name +
                                   "' is ambiguous");
  }
  const DataType type = schema.column(lookup.index).type;
  if (type != DataType::kInt64 && type != DataType::kDouble) {
    return Status::InvalidArgument("continuous query: " + what + " '" + name +
                                   "' must be numeric");
  }
  *index = lookup.index;
  return Status::OK();
}

/// RAII registration of an in-flight maintenance context, so
/// CancelActive() reaches it.
class ScopedActive {
 public:
  ScopedActive(std::mutex* mu, std::vector<QueryContext*>* active,
               QueryContext* ctx)
      : mu_(mu), active_(active), ctx_(ctx) {
    std::lock_guard<std::mutex> lock(*mu_);
    active_->push_back(ctx_);
  }
  ~ScopedActive() {
    std::lock_guard<std::mutex> lock(*mu_);
    active_->erase(std::find(active_->begin(), active_->end(), ctx_));
  }

 private:
  std::mutex* mu_;
  std::vector<QueryContext*>* active_;
  QueryContext* ctx_;
};

}  // namespace

uint64_t ArrivalKey(double t, double x, double y) {
  uint64_t h = Mix64(std::bit_cast<uint64_t>(t));
  h = Mix64(h ^ std::bit_cast<uint64_t>(x));
  h = Mix64(h ^ std::bit_cast<uint64_t>(y));
  return h;
}

/// The continuous query's resolved physical form: the base table's column
/// indices plus the similarity and window parameters. Recomputed from the
/// stored AST whenever the catalog version moves (plan_rebuilds).
struct ContinuousQueryManager::Config {
  std::string table;
  sql::SimilarityClause::Kind kind = sql::SimilarityClause::Kind::kAny;
  geom::Metric metric = geom::Metric::kL2;
  double epsilon = 0.0;
  core::OverlapClause on_overlap = core::OverlapClause::kJoinAny;
  int dop = 1;
  sql::WindowClause window;
  size_t x_col = 0;
  size_t y_col = 0;
  size_t t_col = 0;
};

/// One event-time window currently being maintained. Exactly one of
/// all/any is set, per the query's similarity kind.
struct ContinuousQueryManager::OpenWindow {
  double start = 0.0;
  double end = 0.0;
  std::unique_ptr<core::IncrementalSgbAll> all;
  std::unique_ptr<core::IncrementalSgbAny> any;

  struct Arrival {
    double t = 0.0;
    double x = 0.0;
    double y = 0.0;
    uint64_t seq = 0;  ///< per-query arrival sequence number
    uint64_t key = 0;  ///< identity arbitration key
  };
  std::vector<Arrival> arrivals;  ///< arrival order (core insert order)
  std::vector<GroupDelta> deltas;
};

struct ContinuousQueryManager::Cq {
  std::string name;
  std::string table;  ///< base table (fixed by the AST; never re-resolved)
  std::string definition;
  sql::CreateContinuousStatement stmt;  ///< owns the AST for re-resolution

  std::mutex mu;  ///< guards everything below
  Config config;
  uint64_t planned_version = 0;
  uint64_t plan_rebuilds = 0;

  bool has_watermark = false;
  double watermark = -std::numeric_limits<double>::infinity();
  /// Windows with index < next_unclosed have closed; arrivals for them are
  /// late. Window end times are monotone in the index, so closes advance
  /// this monotonically.
  int64_t next_unclosed = std::numeric_limits<int64_t>::min();
  uint64_t arrivals_seen = 0;

  uint64_t rows_seen = 0;
  uint64_t late_rows = 0;
  uint64_t skipped_rows = 0;  ///< NULL / non-numeric time or coordinates
  uint64_t windows_closed = 0;
  uint64_t delta_events = 0;
  uint64_t differential_checks = 0;

  std::map<int64_t, OpenWindow> open;
  std::map<uint64_t, Subscriber> subscribers;
};

ContinuousQueryManager::ContinuousQueryManager()
    : memory_("continuous", &MemoryTracker::EngineGlobal()) {}

Status ContinuousQueryManager::Resolve(const Catalog& catalog,
                                       const sql::SelectStatement& select,
                                       Config* config) {
  if (select.from.size() != 1 || select.from[0].subquery != nullptr ||
      select.from[0].table_name.empty()) {
    return Status::InvalidArgument(
        "continuous query: FROM must name exactly one table");
  }
  const std::string& table = select.from[0].table_name;
  AppendTablePtr appendable = catalog.FindAppendable(table);
  if (appendable == nullptr) {
    return Status::InvalidArgument(
        "continuous query: '" + table +
        "' is not an append-only table (only CREATE TABLE tables stream)");
  }
  using Kind = sql::SimilarityClause::Kind;
  if (select.similarity.kind != Kind::kAll &&
      select.similarity.kind != Kind::kAny) {
    return Status::InvalidArgument(
        "continuous query: the SELECT must carry a SIMILARITY GROUP BY "
        "(DISTANCE-TO-ALL or DISTANCE-TO-ANY)");
  }
  if (!(select.similarity.epsilon > 0.0)) {
    return Status::InvalidArgument(
        "continuous query: WITHIN epsilon must be positive");
  }
  if (!select.window.has_value()) {
    return Status::InvalidArgument(
        "continuous query: the SELECT must carry a WINDOW clause");
  }
  const sql::WindowClause& window = *select.window;
  if (!(window.size > 0.0) || !(window.advance > 0.0) ||
      window.advance > window.size) {
    return Status::InvalidArgument(
        "continuous query: WINDOW requires 0 < advance <= size");
  }
  if (select.group_by.size() != 2) {
    return Status::InvalidArgument(
        "continuous query: SIMILARITY GROUP BY takes exactly two columns");
  }
  if (select.where != nullptr || select.having != nullptr ||
      !select.order_by.empty() || select.limit.has_value()) {
    return Status::InvalidArgument(
        "continuous query: WHERE/HAVING/ORDER BY/LIMIT are not supported");
  }
  const int dop = select.similarity.dop.value_or(1);
  if (dop < 0) {
    return Status::InvalidArgument("continuous query: PARALLEL must be >= 0");
  }

  const Schema& schema = appendable->schema();
  Config out;
  out.table = table;
  out.kind = select.similarity.kind;
  out.metric = select.similarity.metric;
  out.epsilon = select.similarity.epsilon;
  out.on_overlap = select.similarity.on_overlap;
  out.dop = dop;
  out.window = window;
  for (size_t axis = 0; axis < 2; ++axis) {
    const sql::ParsedExpr& e = *select.group_by[axis];
    if (e.kind != sql::ParsedExpr::Kind::kColumn) {
      return Status::InvalidArgument(
          "continuous query: GROUP BY columns must be plain column "
          "references");
    }
    SGB_RETURN_IF_ERROR(ResolveColumn(
        schema, e.qualifier, e.name, "grouping column",
        axis == 0 ? &out.x_col : &out.y_col));
  }
  SGB_RETURN_IF_ERROR(ResolveColumn(schema, "", window.time_column,
                                    "WINDOW time column", &out.t_col));
  *config = std::move(out);
  return Status::OK();
}

Status ContinuousQueryManager::Create(const Catalog& catalog,
                                      sql::CreateContinuousStatement stmt,
                                      std::string definition) {
  if (stmt.select == nullptr) {
    return Status::InvalidArgument(
        "continuous query: missing SELECT body");
  }
  Config config;
  SGB_RETURN_IF_ERROR(Resolve(catalog, *stmt.select, &config));

  std::lock_guard<std::mutex> lock(mu_);
  if (queries_.count(stmt.name) != 0) {
    if (stmt.if_not_exists) return Status::OK();
    return Status::InvalidArgument("continuous query '" + stmt.name +
                                   "' already exists");
  }
  auto cq = std::make_shared<Cq>();
  cq->name = stmt.name;
  cq->table = config.table;
  cq->definition = std::move(definition);
  cq->config = std::move(config);
  cq->planned_version = catalog.version();
  cq->stmt = std::move(stmt);
  queries_.emplace(cq->name, std::move(cq));
  return Status::OK();
}

Status ContinuousQueryManager::Drop(const std::string& name, bool if_exists) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queries_.erase(name) == 0 && !if_exists) {
    return Status::NotFound("no continuous query named '" + name + "'");
  }
  return Status::OK();
}

Status ContinuousQueryManager::ApplyArrival(Cq& cq, OpenWindow& window,
                                            double t, double x, double y,
                                            QueryContext* ctx) {
  const geom::Point p{x, y};
  const uint64_t seq = cq.arrivals_seen;
  const uint64_t key = ArrivalKey(t, x, y);
  Result<core::DeltaEvent> event = [&] {
    if (window.all != nullptr) {
      window.all->set_query_ctx(ctx);
      auto out = window.all->Insert(p, key);
      window.all->set_query_ctx(nullptr);
      return out;
    }
    window.any->set_query_ctx(ctx);
    auto out = window.any->Insert(p);
    window.any->set_query_ctx(nullptr);
    return out;
  }();
  // A failed core insert mutated nothing, so skipping the arrival record
  // keeps the maintained window self-consistent; the INSERT's error tells
  // the client the maintained state may lag the base table.
  if (!event.ok()) return event.status();
  window.arrivals.push_back(OpenWindow::Arrival{t, x, y, seq, key});
  window.deltas.push_back(
      GroupDelta{core::ToString(event.value().kind),
                 static_cast<int64_t>(seq),
                 static_cast<int64_t>(event.value().merged_groups)});
  return Status::OK();
}

Status ContinuousQueryManager::CloseWindow(Cq& cq, int64_t index,
                                           QueryContext* ctx,
                                           std::vector<DeltaBatch>* closed) {
  SGB_RETURN_IF_ERROR(g_close_fault.Check());

  OpenWindow& window = cq.open.at(index);
  const size_t n = window.arrivals.size();

  // The window's canonical order: (event time, x, y, arrival seq). Purely
  // content-defined (the seq only breaks exact duplicate rows), so every
  // arrival order of the same rows closes identically.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const OpenWindow::Arrival& ra = window.arrivals[a];
    const OpenWindow::Arrival& rb = window.arrivals[b];
    if (ra.t != rb.t) return ra.t < rb.t;
    if (ra.x != rb.x) return ra.x < rb.x;
    if (ra.y != rb.y) return ra.y < rb.y;
    return ra.seq < rb.seq;
  });

  std::vector<geom::Point> points(n);
  std::vector<uint64_t> keys(n);
  for (size_t k = 0; k < n; ++k) {
    const OpenWindow::Arrival& a = window.arrivals[order[k]];
    points[k] = geom::Point{a.x, a.y};
    keys[k] = a.key;
  }

  // Maintained grouping (incremental state) vs from-scratch batch
  // execution at the query's configured DOP — the differential check every
  // close must pass before any delta is published.
  Result<core::Grouping> maintained = [&]() -> Result<core::Grouping> {
    if (window.all != nullptr) {
      window.all->set_query_ctx(ctx);
      auto out = window.all->Snapshot(order);
      window.all->set_query_ctx(nullptr);
      return out;
    }
    window.any->set_query_ctx(ctx);
    auto out = window.any->Snapshot(order);
    window.any->set_query_ctx(nullptr);
    return out;
  }();
  if (!maintained.ok()) return maintained.status();

  Result<core::Grouping> batch = [&]() -> Result<core::Grouping> {
    if (window.all != nullptr) {
      core::SgbAllOptions options;
      options.epsilon = cq.config.epsilon;
      options.metric = cq.config.metric;
      options.on_overlap = cq.config.on_overlap;
      options.degree_of_parallelism = cq.config.dop;
      options.query_ctx = ctx;
      options.arbitration_keys = keys;
      return core::SgbAll(points, options);
    }
    core::SgbAnyOptions options;
    options.epsilon = cq.config.epsilon;
    options.metric = cq.config.metric;
    options.degree_of_parallelism = cq.config.dop;
    options.query_ctx = ctx;
    return core::SgbAny(points, options);
  }();
  if (!batch.ok()) return batch.status();

  auto& registry = obs::MetricsRegistry::Global();
  ++cq.differential_checks;
  registry.GetCounter("continuous.differential_checks").Add(1);
  if (maintained.value().group_of != batch.value().group_of ||
      maintained.value().num_groups != batch.value().num_groups) {
    registry.GetCounter("continuous.differential_failures").Add(1);
    return Status::Internal(
        "continuous query '" + cq.name + "': maintained grouping for window [" +
        std::to_string(window.start) + ", " + std::to_string(window.end) +
        ") diverged from its batch re-execution");
  }

  DeltaBatch out;
  out.query = cq.name;
  out.window_start = window.start;
  out.window_end = window.end;
  out.rows = n;
  out.num_groups = maintained.value().num_groups;
  out.eliminated = maintained.value().NumEliminated();
  out.deltas = std::move(window.deltas);
  out.deltas.push_back(GroupDelta{
      "window_closed", -1, static_cast<int64_t>(out.num_groups)});

  ++cq.windows_closed;
  cq.delta_events += out.deltas.size();
  registry.GetCounter("continuous.windows_closed").Add(1);
  registry.GetCounter("continuous.delta_events").Add(out.deltas.size());

  closed->push_back(std::move(out));
  cq.next_unclosed = std::max(cq.next_unclosed, index + 1);
  cq.open.erase(index);
  return Status::OK();
}

Status ContinuousQueryManager::OnInsert(const Catalog& catalog,
                                        const std::string& table,
                                        const std::vector<Row>& rows) {
  std::vector<std::shared_ptr<Cq>> affected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, cq] : queries_) {
      if (cq->table == table) affected.push_back(cq);
    }
  }
  if (affected.empty()) return Status::OK();

  auto& registry = obs::MetricsRegistry::Global();
  for (const std::shared_ptr<Cq>& cq_ptr : affected) {
    Cq& cq = *cq_ptr;
    QueryContext ctx(0);
    ScopedActive active(&active_mu_, &active_, &ctx);

    std::vector<DeltaBatch> closed;
    Status status = Status::OK();
    {
      std::lock_guard<std::mutex> lock(cq.mu);

      // Catalog moved (DDL, ANALYZE, stats refresh): re-resolve the stored
      // AST, like the session plan cache replanning a cached SELECT.
      const uint64_t version = catalog.version();
      if (version != cq.planned_version) {
        SGB_RETURN_IF_ERROR(Resolve(catalog, *cq.stmt.select, &cq.config));
        cq.planned_version = version;
        ++cq.plan_rebuilds;
        registry.GetCounter("continuous.plan_rebuilds").Add(1);
      }

      const Config& config = cq.config;
      const double size = config.window.size;
      const double advance = config.window.advance;
      for (const Row& row : rows) {
        ++cq.rows_seen;
        const Value& tv = row[config.t_col];
        const Value& xv = row[config.x_col];
        const Value& yv = row[config.y_col];
        if (!tv.IsNumeric() || !xv.IsNumeric() || !yv.IsNumeric()) {
          ++cq.skipped_rows;
          registry.GetCounter("continuous.skipped_rows").Add(1);
          continue;
        }
        const double t = tv.ToDouble();
        const double x = xv.ToDouble();
        const double y = yv.ToDouble();

        // Every window [i*advance, i*advance + size) covering t.
        const int64_t i_max = FloorDiv(t, advance);
        const int64_t i_min = FloorDiv(t - size, advance) + 1;
        bool applied_all = true;
        for (int64_t i = i_min; i <= i_max; ++i) {
          const double start = static_cast<double>(i) * advance;
          const double end = start + size;
          if (t < start || t >= end) continue;  // boundary guard
          // Late = the target window already closed (not merely "behind
          // the watermark"): the watermark only advances closes at
          // statement end, so any arrival order *within* a statement is
          // tolerated, and a window the watermark passed before it ever
          // saw a row simply closes at this statement's close pass. This
          // keeps every close a pure function of the rows that reached
          // the window, whatever order they came in.
          if (i < cq.next_unclosed) {
            ++cq.late_rows;
            registry.GetCounter("continuous.late_rows").Add(1);
            continue;
          }
          auto [it, created] = cq.open.try_emplace(i);
          OpenWindow& window = it->second;
          if (created) {
            window.start = start;
            window.end = end;
            if (config.kind == sql::SimilarityClause::Kind::kAll) {
              core::SgbAllOptions options;
              options.epsilon = config.epsilon;
              options.metric = config.metric;
              options.on_overlap = config.on_overlap;
              window.all = std::make_unique<core::IncrementalSgbAll>(
                  options, &memory_);
            } else {
              core::SgbAnyOptions options;
              options.epsilon = config.epsilon;
              options.metric = config.metric;
              window.any = std::make_unique<core::IncrementalSgbAny>(
                  options, &memory_);
            }
          }
          status = ApplyArrival(cq, window, t, x, y, &ctx);
          if (!status.ok()) {
            applied_all = false;
            break;
          }
        }
        if (!applied_all) break;
        ++cq.arrivals_seen;
        if (!cq.has_watermark || t > cq.watermark) {
          cq.has_watermark = true;
          cq.watermark = t;
        }
      }

      // Close every window the watermark has passed, in index (= end time)
      // order. A failed close leaves its window open for the next INSERT
      // to retry; later windows stay open behind it so deltas keep their
      // order.
      while (status.ok() && !cq.open.empty()) {
        const auto it = cq.open.begin();
        if (!(cq.has_watermark && it->second.end <= cq.watermark)) break;
        status = CloseWindow(cq, it->first, &ctx, &closed);
      }
    }

    DeliverBatches(cq, closed);
    SGB_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

void ContinuousQueryManager::DeliverBatches(
    Cq& cq, const std::vector<DeltaBatch>& closed) {
  if (closed.empty()) return;
  std::vector<std::pair<uint64_t, Subscriber>> subscribers;
  {
    std::lock_guard<std::mutex> lock(cq.mu);
    subscribers.assign(cq.subscribers.begin(), cq.subscribers.end());
  }
  std::vector<uint64_t> dead;
  for (auto& [id, fn] : subscribers) {
    for (const DeltaBatch& batch : closed) {
      if (!fn(batch)) {
        dead.push_back(id);
        break;
      }
    }
  }
  if (dead.empty()) return;
  std::lock_guard<std::mutex> lock(cq.mu);
  for (const uint64_t id : dead) cq.subscribers.erase(id);
}

Result<uint64_t> ContinuousQueryManager::Subscribe(const std::string& name,
                                                   Subscriber fn) {
  std::shared_ptr<Cq> cq;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(name);
    if (it == queries_.end()) {
      return Status::NotFound("no continuous query named '" + name + "'");
    }
    cq = it->second;
    id = next_subscription_id_++;
  }
  std::lock_guard<std::mutex> lock(cq->mu);
  cq->subscribers.emplace(id, std::move(fn));
  return id;
}

void ContinuousQueryManager::Unsubscribe(uint64_t id) {
  std::vector<std::shared_ptr<Cq>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, cq] : queries_) all.push_back(cq);
  }
  for (const std::shared_ptr<Cq>& cq : all) {
    std::lock_guard<std::mutex> lock(cq->mu);
    cq->subscribers.erase(id);
  }
}

void ContinuousQueryManager::CancelActive() {
  std::lock_guard<std::mutex> lock(active_mu_);
  for (QueryContext* ctx : active_) ctx->Cancel();
}

namespace {

Schema ContinuousQueriesSchema() {
  Schema s;
  s.AddColumn(Column{"name", DataType::kString, ""});
  s.AddColumn(Column{"table_name", DataType::kString, ""});
  s.AddColumn(Column{"kind", DataType::kString, ""});
  s.AddColumn(Column{"metric", DataType::kString, ""});
  s.AddColumn(Column{"epsilon", DataType::kDouble, ""});
  s.AddColumn(Column{"on_overlap", DataType::kString, ""});
  s.AddColumn(Column{"dop", DataType::kInt64, ""});
  s.AddColumn(Column{"window", DataType::kString, ""});
  s.AddColumn(Column{"window_size", DataType::kDouble, ""});
  s.AddColumn(Column{"window_advance", DataType::kDouble, ""});
  s.AddColumn(Column{"time_column", DataType::kString, ""});
  s.AddColumn(Column{"watermark", DataType::kDouble, ""});
  s.AddColumn(Column{"open_windows", DataType::kInt64, ""});
  s.AddColumn(Column{"rows_seen", DataType::kInt64, ""});
  s.AddColumn(Column{"late_rows", DataType::kInt64, ""});
  s.AddColumn(Column{"skipped_rows", DataType::kInt64, ""});
  s.AddColumn(Column{"windows_closed", DataType::kInt64, ""});
  s.AddColumn(Column{"delta_events", DataType::kInt64, ""});
  s.AddColumn(Column{"differential_checks", DataType::kInt64, ""});
  s.AddColumn(Column{"plan_rebuilds", DataType::kInt64, ""});
  s.AddColumn(Column{"subscribers", DataType::kInt64, ""});
  s.AddColumn(Column{"definition", DataType::kString, ""});
  return s;
}

}  // namespace

Result<TablePtr> ContinuousQueryManager::SystemRows() const {
  std::vector<std::shared_ptr<Cq>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, cq] : queries_) all.push_back(cq);
  }
  auto table = std::make_shared<Table>(ContinuousQueriesSchema());
  table->Reserve(all.size());
  for (const std::shared_ptr<Cq>& cq_ptr : all) {
    Cq& cq = *cq_ptr;
    std::lock_guard<std::mutex> lock(cq.mu);
    const Config& c = cq.config;
    SGB_RETURN_IF_ERROR(table->Append(Row{
        Value::Str(cq.name), Value::Str(cq.table),
        Value::Str(KindName(c.kind)), Value::Str(MetricName(c.metric)),
        Value::Double(c.epsilon),
        Value::Str(c.kind == sql::SimilarityClause::Kind::kAll
                       ? core::ToString(c.on_overlap)
                       : ""),
        Value::Int(c.dop), Value::Str(WindowKindName(c.window.kind)),
        Value::Double(c.window.size), Value::Double(c.window.advance),
        Value::Str(c.window.time_column),
        cq.has_watermark ? Value::Double(cq.watermark) : Value::Null(),
        Value::Int(static_cast<int64_t>(cq.open.size())),
        Value::Int(static_cast<int64_t>(cq.rows_seen)),
        Value::Int(static_cast<int64_t>(cq.late_rows)),
        Value::Int(static_cast<int64_t>(cq.skipped_rows)),
        Value::Int(static_cast<int64_t>(cq.windows_closed)),
        Value::Int(static_cast<int64_t>(cq.delta_events)),
        Value::Int(static_cast<int64_t>(cq.differential_checks)),
        Value::Int(static_cast<int64_t>(cq.plan_rebuilds)),
        Value::Int(static_cast<int64_t>(cq.subscribers.size())),
        Value::Str(cq.definition)}));
  }
  return TablePtr(std::move(table));
}

void RegisterContinuousSystemTable(
    Catalog* catalog, std::shared_ptr<ContinuousQueryManager> manager) {
  catalog->RegisterProvider(
      "system.continuous_queries",
      [manager](const Catalog&) -> Result<TablePtr> {
        return manager->SystemRows();
      });
}

}  // namespace sgb::engine
