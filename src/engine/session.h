#ifndef SGB_ENGINE_SESSION_H_
#define SGB_ENGINE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "engine/operators.h"
#include "sql/planner.h"

namespace sgb::engine {

/// What Database does when a query's estimated footprint does not fit the
/// engine headroom at plan time (docs/ROBUSTNESS.md "Admission control").
enum class AdmissionMode {
  kOff,    ///< admit everything (the historical behavior)
  kQueue,  ///< wait until enough admitted queries finish
  kShed,   ///< fail fast with ResourceExhausted
};

/// The session-scoped governance knobs behind `SET` (docs/SERVER.md
/// "Sessions"). Every statement executes under one immutable snapshot of
/// these, taken when it starts — a concurrent SET applies from the next
/// statement on.
struct SessionGovernance {
  int64_t timeout_ms = 0;            ///< 0 = no deadline
  size_t memory_budget_bytes = 0;    ///< 0 = unlimited
  bool spill_enabled = false;
  std::string spill_directory;       ///< empty = environment default
  AdmissionMode admission = AdmissionMode::kOff;
  size_t admission_budget_bytes = 0;  ///< 0 = engine-global limit
  bool trace_enabled = false;         ///< SET trace = 1
  int64_t slow_query_micros = 0;      ///< SET slow_query_micros = n
};

/// A re-executable plan checked in and out of the session plan cache, plus
/// the metadata the query log wants without replanning.
struct CachedPlan {
  OperatorPtr plan;
  uint64_t catalog_version = 0;  ///< valid while Catalog::version() matches
  std::string tier = "none";
  int64_t dop = 0;
  int64_t est_rows = 0;       ///< cost-model row estimate (0 = no stats)
  size_t est_bytes = 0;       ///< cost-model footprint estimate
  std::string strategy;       ///< chosen group-by strategy / SGB tier detail
};

class Session;

/// The live sessions of one Database, keyed by id. Sessions register in
/// their constructor and deregister in their destructor; system.sessions
/// snapshots the registry. Behind a shared_ptr so both the Database and
/// the provider closure can outlive each other safely.
class SessionRegistry {
 public:
  /// Visits every live session in id order under the registry lock; `fn`
  /// must not create or destroy sessions.
  void ForEach(const std::function<void(const Session&)>& fn) const;

  size_t size() const;

 private:
  friend class Session;

  uint64_t Add(Session* session);
  void Remove(uint64_t id);

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Session*> sessions_;
};

/// Per-session state of the multi-session front end (docs/SERVER.md): the
/// governance knobs SET adjusts, the planner defaults, a small LRU plan
/// cache keyed by normalized SQL, named prepared statements, the set of
/// queries this session is executing right now (for targeted cancellation
/// when its connection drops), and lifetime counters for system.sessions.
///
/// Sessions are created through Database::CreateSession() and execute via
/// Database::Query(session, sql). All methods are thread-safe: the server
/// runs one thread per connection, but cancellation, system.sessions
/// snapshots, and the legacy shared default session cross threads.
class Session {
 public:
  static constexpr size_t kPlanCacheCapacity = 32;

  Session(std::shared_ptr<SessionRegistry> registry, std::string peer);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  const std::string& peer() const { return peer_; }

  // ---- Governance -------------------------------------------------------

  /// One consistent view of the knobs; statements snapshot once at start.
  SessionGovernance GovernanceSnapshot() const;
  sql::PlannerOptions PlannerOptionsSnapshot() const;

  void set_timeout_ms(int64_t ms);
  int64_t timeout_ms() const;
  void set_memory_budget_bytes(size_t bytes);
  size_t memory_budget_bytes() const;
  void set_spill_enabled(bool enabled);
  bool spill_enabled() const;
  void set_spill_directory(std::string dir);
  std::string spill_directory() const;
  void set_admission_mode(AdmissionMode mode);
  AdmissionMode admission_mode() const;
  void set_admission_budget_bytes(size_t bytes);
  size_t admission_budget_bytes() const;
  void set_trace_enabled(bool enabled);
  bool trace_enabled() const;
  void set_slow_query_micros(int64_t micros);
  int64_t slow_query_micros() const;
  void set_default_sgb_dop(int dop);
  int default_sgb_dop() const;
  void set_sgb_tier(sql::TierPolicy policy);
  sql::TierPolicy sgb_tier() const;
  void set_agg_strategy(sql::AggStrategy strategy);
  sql::AggStrategy agg_strategy() const;

  // ---- Plan cache -------------------------------------------------------

  /// Cache key: SQL with whitespace runs collapsed to single spaces,
  /// trimmed, and case-folded outside single-quoted strings.
  static std::string NormalizeSql(const std::string& sql);

  /// Checks a plan *out* of the cache (removing it) when one is present
  /// and was built at `catalog_version` — two threads can never execute
  /// the same operator tree. Counts a hit or miss either way.
  std::optional<CachedPlan> TakeCachedPlan(const std::string& key,
                                           uint64_t catalog_version);

  /// Checks a plan back in (or inserts a fresh one) at LRU front, evicting
  /// beyond kPlanCacheCapacity.
  void StoreCachedPlan(const std::string& key, CachedPlan plan);

  size_t plan_cache_size() const;

  // ---- Prepared statements ----------------------------------------------

  /// Binds `name` to a SQL text (replacing any previous binding). The
  /// Database validates the text before defining.
  void DefinePrepared(const std::string& name, const std::string& sql);

  /// NotFound when `name` was never prepared on this session.
  Result<std::string> LookupPrepared(const std::string& name) const;

  size_t prepared_count() const;

  // ---- Active queries / cancellation -------------------------------------

  void RegisterContext(QueryContext* ctx);
  void UnregisterContext(QueryContext* ctx);

  /// Cooperatively cancels the queries this session is executing right now
  /// (the server calls this when the session's connection drops mid-query).
  /// Other sessions are untouched.
  void CancelActive();

  size_t active_queries() const;

  // ---- Counters (system.sessions) ---------------------------------------

  void RecordStatement(bool ok, int64_t rows_out) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
    if (rows_out > 0) {
      rows_returned_.fetch_add(static_cast<uint64_t>(rows_out),
                               std::memory_order_relaxed);
    }
  }

  uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t rows_returned() const {
    return rows_returned_.load(std::memory_order_relaxed);
  }
  uint64_t plan_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t plan_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  using CacheList = std::list<std::pair<std::string, CachedPlan>>;

  /// Drops every cached plan (callers hold mu_). Planner-affecting knobs
  /// (sgb_tier, agg_strategy, parallel, memory budget, spill) call this so
  /// a SET is never shadowed by a plan built under the old options.
  void InvalidateCachedPlansLocked();

  std::shared_ptr<SessionRegistry> registry_;
  std::string peer_;
  uint64_t id_ = 0;

  mutable std::mutex mu_;  ///< governance, planner options, prepared, cache
  SessionGovernance governance_;
  sql::PlannerOptions planner_options_;
  std::map<std::string, std::string> prepared_;
  CacheList cache_lru_;  ///< most recently used first
  std::unordered_map<std::string, CacheList::iterator> cache_index_;

  mutable std::mutex active_mu_;
  std::vector<QueryContext*> active_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> rows_returned_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

using SessionPtr = std::shared_ptr<Session>;

}  // namespace sgb::engine

#endif  // SGB_ENGINE_SESSION_H_
