#ifndef SGB_ENGINE_VALUE_H_
#define SGB_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sgb::engine {

/// Column data types of the mini relational engine. The engine is
/// dynamically typed at the Value level (like SQLite): every cell knows its
/// own type, and numeric operators coerce int64 <-> double.
enum class DataType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

const char* ToString(DataType type);

/// A single SQL value. Small, copyable, value-semantic.
class Value {
 public:
  Value() = default;  // NULL
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  static Value Bool(bool v) { return Int(v ? 1 : 0); }

  DataType type() const {
    switch (payload_.index()) {
      case 0:
        return DataType::kNull;
      case 1:
        return DataType::kInt64;
      case 2:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_null() const { return payload_.index() == 0; }
  bool IsNumeric() const {
    return type() == DataType::kInt64 || type() == DataType::kDouble;
  }

  int64_t AsInt() const { return std::get<int64_t>(payload_); }
  double AsDouble() const { return std::get<double>(payload_); }
  const std::string& AsString() const { return std::get<std::string>(payload_); }

  /// Numeric coercion; 0.0 for NULL, parse-free 0.0 for strings.
  double ToDouble() const;

  /// SQL truthiness: non-zero numeric. NULL and strings are false.
  bool ToBool() const;

  /// Human-readable rendering ("NULL", numerics, raw string).
  std::string ToString() const;

  /// Three-way comparison for ORDER BY / join keys / group keys.
  /// NULL sorts first; numerics compare by value across int64/double;
  /// cross-type (string vs numeric) compares by type rank. Returns -1/0/1.
  static int Compare(const Value& a, const Value& b);

  /// Equality consistent with Compare()==0 (used by hash grouping).
  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }

  /// Hash consistent with operator== (int64 2.0 and double 2.0 collide).
  size_t Hash() const;

 private:
  using Payload = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

using Row = std::vector<Value>;

/// Hash/equality functors for composite keys (GROUP BY, hash join).
struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_VALUE_H_
