#include "engine/session.h"

#include <algorithm>
#include <cctype>

namespace sgb::engine {

// ---- SessionRegistry ------------------------------------------------------

uint64_t SessionRegistry::Add(Session* session) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  sessions_[id] = session;
  return id;
}

void SessionRegistry::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

void SessionRegistry::ForEach(
    const std::function<void(const Session&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, session] : sessions_) fn(*session);
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---- Session --------------------------------------------------------------

Session::Session(std::shared_ptr<SessionRegistry> registry, std::string peer)
    : registry_(std::move(registry)), peer_(std::move(peer)) {
  id_ = registry_->Add(this);
}

Session::~Session() { registry_->Remove(id_); }

SessionGovernance Session::GovernanceSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_;
}

sql::PlannerOptions Session::PlannerOptionsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  sql::PlannerOptions options = planner_options_;
  // Governance knobs the cost model reads: the memory headroom for
  // hash-vs-sort regime rules, and whether spilling rules out the
  // (non-spillable) sort aggregate.
  options.memory_budget_bytes = governance_.memory_budget_bytes;
  options.spill_enabled = governance_.spill_enabled;
  return options;
}

void Session::set_timeout_ms(int64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.timeout_ms = ms;
}
int64_t Session::timeout_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.timeout_ms;
}
void Session::set_memory_budget_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.memory_budget_bytes = bytes;
  InvalidateCachedPlansLocked();  // the cost model reads the budget
}
size_t Session::memory_budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.memory_budget_bytes;
}
void Session::set_spill_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.spill_enabled = enabled;
  InvalidateCachedPlansLocked();  // rules the sort aggregate in or out
}
bool Session::spill_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.spill_enabled;
}
void Session::set_spill_directory(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.spill_directory = std::move(dir);
}
std::string Session::spill_directory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.spill_directory;
}
void Session::set_admission_mode(AdmissionMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.admission = mode;
}
AdmissionMode Session::admission_mode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.admission;
}
void Session::set_admission_budget_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.admission_budget_bytes = bytes;
}
size_t Session::admission_budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.admission_budget_bytes;
}
void Session::set_trace_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.trace_enabled = enabled;
}
bool Session::trace_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.trace_enabled;
}
void Session::set_slow_query_micros(int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  governance_.slow_query_micros = micros;
}
int64_t Session::slow_query_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return governance_.slow_query_micros;
}
void Session::set_default_sgb_dop(int dop) {
  std::lock_guard<std::mutex> lock(mu_);
  planner_options_.default_sgb_dop = dop;
  InvalidateCachedPlansLocked();
}
int Session::default_sgb_dop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return planner_options_.default_sgb_dop;
}
void Session::set_sgb_tier(sql::TierPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  planner_options_.sgb_tier = policy;
  InvalidateCachedPlansLocked();
}
sql::TierPolicy Session::sgb_tier() const {
  std::lock_guard<std::mutex> lock(mu_);
  return planner_options_.sgb_tier;
}
void Session::set_agg_strategy(sql::AggStrategy strategy) {
  std::lock_guard<std::mutex> lock(mu_);
  planner_options_.agg_strategy = strategy;
  InvalidateCachedPlansLocked();
}

void Session::InvalidateCachedPlansLocked() {
  cache_lru_.clear();
  cache_index_.clear();
}
sql::AggStrategy Session::agg_strategy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return planner_options_.agg_strategy;
}

// ---- Plan cache -----------------------------------------------------------

std::string Session::NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (char c : sql) {
    if (in_string) {
      out.push_back(c);
      if (c == '\'') in_string = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out.push_back(c);
      continue;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::optional<CachedPlan> Session::TakeCachedPlan(const std::string& key,
                                                  uint64_t catalog_version) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  CachedPlan plan = std::move(it->second->second);
  cache_lru_.erase(it->second);
  cache_index_.erase(it);
  if (plan.catalog_version != catalog_version) {
    // DDL happened since this plan was built: drop it, replan.
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  return plan;
}

void Session::StoreCachedPlan(const std::string& key, CachedPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    // A concurrent execution of the same statement already checked a copy
    // back in; keep the newer one.
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
  }
  cache_lru_.emplace_front(key, std::move(plan));
  cache_index_[key] = cache_lru_.begin();
  while (cache_lru_.size() > kPlanCacheCapacity) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

size_t Session::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_lru_.size();
}

// ---- Prepared statements --------------------------------------------------

void Session::DefinePrepared(const std::string& name,
                             const std::string& sql) {
  std::lock_guard<std::mutex> lock(mu_);
  prepared_[name] = sql;
}

Result<std::string> Session::LookupPrepared(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = prepared_.find(name);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement named '" + name + "'");
  }
  return it->second;
}

size_t Session::prepared_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_.size();
}

// ---- Active queries -------------------------------------------------------

void Session::RegisterContext(QueryContext* ctx) {
  std::lock_guard<std::mutex> lock(active_mu_);
  active_.push_back(ctx);
}

void Session::UnregisterContext(QueryContext* ctx) {
  std::lock_guard<std::mutex> lock(active_mu_);
  active_.erase(std::remove(active_.begin(), active_.end(), ctx),
                active_.end());
}

void Session::CancelActive() {
  std::lock_guard<std::mutex> lock(active_mu_);
  for (QueryContext* ctx : active_) ctx->Cancel();
}

size_t Session::active_queries() const {
  std::lock_guard<std::mutex> lock(active_mu_);
  return active_.size();
}

}  // namespace sgb::engine
