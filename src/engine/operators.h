#ifndef SGB_ENGINE_OPERATORS_H_
#define SGB_ENGINE_OPERATORS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/schema.h"
#include "engine/table.h"

namespace sgb::engine {

/// Per-operator execution counters, reset on every Open() and rendered by
/// EXPLAIN ANALYZE. Times are inclusive of children (the standard
/// EXPLAIN ANALYZE convention): a blocking operator that drains its child
/// inside Open() accounts that work in `open_ns`.
struct OperatorStats {
  uint64_t rows_produced = 0;  ///< rows emitted via Next() or NextBatch()
  uint64_t next_calls = 0;     ///< all Next() calls, incl. the final miss
  uint64_t batches = 0;        ///< non-empty batches emitted via NextBatch()
  uint64_t open_ns = 0;
  uint64_t next_ns = 0;            ///< cumulative across all Next() calls
  uint64_t peak_memory_bytes = 0;  ///< approx. materialized state high-water

  /// Operator-specific counters (SGB distance computations, hash-table
  /// groups, ...); name-sorted so EXPLAIN ANALYZE output is deterministic.
  std::map<std::string, uint64_t> extra;

  uint64_t TotalNs() const { return open_ns + next_ns; }
  double TotalMillis() const { return static_cast<double>(TotalNs()) / 1e6; }
};

/// Fixed-capacity container of rows for batch-at-a-time execution. A batch
/// is filled by one NextBatch() call and consumed wholesale by the parent,
/// amortizing the per-row virtual-call and timing overhead of the Volcano
/// interface across kDefaultCapacity rows.
class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    rows_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  bool Full() const { return rows_.size() >= capacity_; }
  void Clear() { rows_.clear(); }
  void Append(Row row) { rows_.push_back(std::move(row)); }

  std::vector<Row>& rows() { return rows_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  size_t capacity_;
  std::vector<Row> rows_;
};

/// Pull-based (Volcano) physical operator. The executor calls Open() once,
/// then Next() until it returns false. Operators own their children.
///
/// Open()/Next() are non-virtual instrumented entry points: they maintain
/// the OperatorStats block (row counts and cumulative wall time) and
/// delegate to the protected OpenImpl()/NextImpl() hooks subclasses
/// implement. Parents call children through the public entry points, so
/// every node in a plan accumulates stats with no per-operator plumbing.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual const Schema& schema() const = 0;
  virtual std::string name() const = 0;

  /// One-line description for EXPLAIN output (operator name + key
  /// parameters, e.g. "Filter (#1(price) > 20)").
  virtual std::string label() const { return name(); }

  /// Child operators, for plan rendering. Non-owning.
  virtual std::vector<const Operator*> children() const { return {}; }

  void Open() {
    stats_ = OperatorStats{};
    ReleaseCharge();
    ThrowIfAborted(ctx_);
    const auto t0 = std::chrono::steady_clock::now();
    OpenImpl();
    stats_.open_ns = ElapsedNs(t0);
  }

  bool Next(Row* out) {
    // Governance check at row-stride granularity: cheap relative to the two
    // clock reads the stats already pay per row.
    if (ctx_ != nullptr &&
        stats_.next_calls % QueryContext::kNextCheckInterval == 0) {
      ThrowIfAborted(ctx_);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = NextImpl(out);
    stats_.next_ns += ElapsedNs(t0);
    ++stats_.next_calls;
    if (ok) ++stats_.rows_produced;
    return ok;
  }

  /// Batch-at-a-time pull: fills `out` with up to out->capacity() rows and
  /// returns true, or returns false once the operator is exhausted (out is
  /// left empty). Instrumented like Next(); a batch's rows count toward
  /// rows_produced exactly once. Drive an operator through either Next()
  /// or NextBatch() for a given Open(), not both.
  bool NextBatch(RowBatch* out);

  /// Counters from the most recent (possibly still running) execution.
  const OperatorStats& stats() const { return stats_; }

  /// Attaches the per-execution governance context (cancel flag, deadline,
  /// memory budget) to this operator and, recursively, to every child.
  /// Called by Database::Query before Open(); a null context (the default)
  /// disables all governance checks.
  void SetQueryContext(QueryContext* ctx);

  QueryContext* query_context() const { return ctx_; }

  /// Plan-time footprint estimate for admission control: roughly how many
  /// bytes this subtree will hold at peak. The default sums the children
  /// (a blocking operator's state is on the order of its input); TableScan
  /// anchors the recursion with rows × row-width. Deliberately coarse —
  /// admission only needs the right order of magnitude. When the planner's
  /// cost model annotated this node (plan_estimate().bytes >= 0), the
  /// statistics-driven estimate wins.
  virtual size_t EstimateFootprintBytes() const {
    size_t total = 0;
    for (const Operator* child : children()) {
      total += child->EstimateFootprintBytes();
    }
    return total;
  }

  /// Cost-model annotation attached by the planner when table statistics
  /// were available. rows/bytes < 0 mean "not annotated". EXPLAIN renders
  /// annotated nodes with est_rows=/est_bytes= (and the note, which carries
  /// decisions like "tier=bounds reason=low-density"); EXPLAIN ANALYZE
  /// prints est_rows beside the actual row count so estimate drift is
  /// visible; admission control prefers the root's bytes over
  /// EstimateFootprintBytes().
  struct PlanEstimate {
    double rows = -1;
    double bytes = -1;
    std::string note;
  };

  void set_plan_estimate(PlanEstimate estimate) {
    plan_estimate_ = std::move(estimate);
  }
  const PlanEstimate& plan_estimate() const { return plan_estimate_; }

 protected:
  virtual void OpenImpl() = 0;
  virtual bool NextImpl(Row* out) = 0;

  /// Default adapter: loops NextImpl() until the batch is full. Operators
  /// with a cheaper bulk path (scans, filters, projections, SGB) override.
  virtual bool NextBatchImpl(RowBatch* out) {
    Row row;
    while (!out->Full() && NextImpl(&row)) {
      out->Append(std::move(row));
      row.clear();
    }
    return !out->empty();
  }

  /// For subclasses publishing memory estimates or extra counters.
  OperatorStats& mutable_stats() { return stats_; }

  /// Publishes `bytes` as this operator's materialized-state high-water
  /// mark AND charges the delta against the query's memory tracker (when a
  /// context is attached), throwing QueryAbort with ResourceExhausted when
  /// the budget does not cover it. Call with the current total held by the
  /// operator; repeated calls re-charge only the difference. The charge is
  /// released on the next Open() and rolled up by the per-query tracker's
  /// destructor at query end.
  void ChargeMemory(size_t bytes);

  /// Non-throwing variant of ChargeMemory for spill-capable operators:
  /// returns false (leaving the existing charge untouched) when the budget
  /// does not cover `bytes`, so the caller can switch to its out-of-core
  /// path instead of aborting the query.
  bool TryChargeMemory(size_t bytes);

  /// Whether this execution should spill instead of failing on a budget
  /// breach (SET spill = 1 carried by the QueryContext).
  bool SpillEnabled() const {
    return ctx_ != nullptr && ctx_->spill().enabled;
  }

  /// Raises the governance abort (cancel/deadline) from inside an Impl.
  void CheckAbort() const { ThrowIfAborted(ctx_); }

 private:
  void ReleaseCharge() {
    if (ctx_ != nullptr && charged_bytes_ > 0) {
      ctx_->memory().Release(charged_bytes_);
    }
    charged_bytes_ = 0;
  }

  static uint64_t ElapsedNs(std::chrono::steady_clock::time_point t0) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  OperatorStats stats_;
  QueryContext* ctx_ = nullptr;
  size_t charged_bytes_ = 0;
  PlanEstimate plan_estimate_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full scan over a stored (or materialized intermediate) table.
OperatorPtr MakeTableScan(TablePtr table, const std::string& qualifier = "");

/// Emits child rows whose predicate evaluates truthy.
OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate);

/// Evaluates one expression per output column.
OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs,
                        std::vector<Column> output_columns);

/// Standard hash-based GROUP BY: one output row per distinct key, columns
/// are [group exprs..., aggregates...]. With no group expressions, a single
/// global group is emitted even for empty input (SQL semantics).
/// `est_groups` (0 = unknown) seeds the hash table and output reservations
/// from the stats-predicted group count so the table is sized once instead
/// of rehash-growing; the estimate is logged as the `est_groups` operator
/// extra beside the actual `groups`.
OperatorPtr MakeHashAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<Column> group_columns,
                              std::vector<AggregateSpec> aggregates,
                              size_t est_groups = 0);

/// Sort-based GROUP BY: sorts the input by key and aggregates adjacent
/// runs. Output rows and their order are bit-identical to the hash
/// aggregate (first-appearance order), so the planner can switch strategy
/// per the hash-vs-sort cost regimes without changing results. Preferable
/// when the predicted group count approaches the row count (the hash
/// table's per-group overhead dominates).
OperatorPtr MakeSortAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<Column> group_columns,
                              std::vector<AggregateSpec> aggregates);

/// Hash equi-join (inner). Output schema is left columns ++ right columns.
OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<ExprPtr> right_keys);

/// Nested-loop inner join with an arbitrary predicate (nullptr = cross
/// join). Fallback when no equi-key is available.
OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate);

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Blocking full sort.
OperatorPtr MakeSort(OperatorPtr child, std::vector<SortKey> keys);

OperatorPtr MakeLimit(OperatorPtr child, size_t limit);

/// Drains `root` into a materialized table (schema copied from the
/// operator).
Result<Table> Materialize(Operator& root);

/// Renders the operator tree as an indented EXPLAIN-style listing:
///   Sort (#1 desc)
///     HashAggregate (keys=1, aggs=2)
///       TableScan orders
std::string ExplainPlan(const Operator& root);

/// Renders the operator tree annotated with the execution counters of the
/// most recent run (the caller executes the plan first — see
/// Database::ExplainAnalyze):
///   Sort [...] (rows=10 time=0.213ms)
///     SimilarityGroupByAll (...) (rows=10 time=0.180ms mem=2.1KB
///                                 dist_comps=812 groups=10)
std::string ExplainAnalyzePlan(const Operator& root);

/// Rough bytes held by a materialized row vector (Row headers + Value
/// slots; string payloads are not walked). Used for peak-memory estimates.
size_t ApproxRowVectorBytes(const std::vector<Row>& rows);

/// Human-readable byte count ("2.1KB", "3.0MB") — the formatting used for
/// mem=/peak_mem= annotations in EXPLAIN ANALYZE.
std::string FormatMemoryBytes(uint64_t bytes);

}  // namespace sgb::engine

#endif  // SGB_ENGINE_OPERATORS_H_
