#ifndef SGB_ENGINE_OPERATORS_H_
#define SGB_ENGINE_OPERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/schema.h"
#include "engine/table.h"

namespace sgb::engine {

/// Pull-based (Volcano) physical operator. The executor calls Open() once,
/// then Next() until it returns false. Operators own their children.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual const Schema& schema() const = 0;
  virtual void Open() = 0;
  virtual bool Next(Row* out) = 0;
  virtual std::string name() const = 0;

  /// One-line description for EXPLAIN output (operator name + key
  /// parameters, e.g. "Filter (#1(price) > 20)").
  virtual std::string label() const { return name(); }

  /// Child operators, for plan rendering. Non-owning.
  virtual std::vector<const Operator*> children() const { return {}; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full scan over a stored (or materialized intermediate) table.
OperatorPtr MakeTableScan(TablePtr table, const std::string& qualifier = "");

/// Emits child rows whose predicate evaluates truthy.
OperatorPtr MakeFilter(OperatorPtr child, ExprPtr predicate);

/// Evaluates one expression per output column.
OperatorPtr MakeProject(OperatorPtr child, std::vector<ExprPtr> exprs,
                        std::vector<Column> output_columns);

/// Standard hash-based GROUP BY: one output row per distinct key, columns
/// are [group exprs..., aggregates...]. With no group expressions, a single
/// global group is emitted even for empty input (SQL semantics).
OperatorPtr MakeHashAggregate(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<Column> group_columns,
                              std::vector<AggregateSpec> aggregates);

/// Hash equi-join (inner). Output schema is left columns ++ right columns.
OperatorPtr MakeHashJoin(OperatorPtr left, OperatorPtr right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<ExprPtr> right_keys);

/// Nested-loop inner join with an arbitrary predicate (nullptr = cross
/// join). Fallback when no equi-key is available.
OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate);

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Blocking full sort.
OperatorPtr MakeSort(OperatorPtr child, std::vector<SortKey> keys);

OperatorPtr MakeLimit(OperatorPtr child, size_t limit);

/// Drains `root` into a materialized table (schema copied from the
/// operator).
Result<Table> Materialize(Operator& root);

/// Renders the operator tree as an indented EXPLAIN-style listing:
///   Sort (#1 desc)
///     HashAggregate (keys=1, aggs=2)
///       TableScan orders
std::string ExplainPlan(const Operator& root);

}  // namespace sgb::engine

#endif  // SGB_ENGINE_OPERATORS_H_
