#include "engine/system_tables.h"

#include <utility>

#include "engine/operators.h"
#include "obs/metrics.h"
#include "stats/table_stats.h"
#include "storage/storage_engine.h"

namespace sgb::engine {

namespace {

Schema MetricsSchema() {
  Schema s;
  s.AddColumn(Column{"name", DataType::kString, ""});
  s.AddColumn(Column{"kind", DataType::kString, ""});
  s.AddColumn(Column{"value", DataType::kDouble, ""});
  s.AddColumn(Column{"count", DataType::kInt64, ""});
  s.AddColumn(Column{"sum", DataType::kInt64, ""});
  s.AddColumn(Column{"min", DataType::kInt64, ""});
  s.AddColumn(Column{"max", DataType::kInt64, ""});
  s.AddColumn(Column{"mean", DataType::kDouble, ""});
  s.AddColumn(Column{"p50", DataType::kDouble, ""});
  s.AddColumn(Column{"p90", DataType::kDouble, ""});
  s.AddColumn(Column{"p95", DataType::kDouble, ""});
  s.AddColumn(Column{"p99", DataType::kDouble, ""});
  return s;
}

/// One row per metric: counters first, then gauges, then histograms, each
/// group name-sorted (MetricsSnapshot's maps are ordered), so the listing
/// is stable across runs given the same registered names.
Result<TablePtr> MetricsProvider(const Catalog&) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  auto table = std::make_shared<Table>(MetricsSchema());
  table->Reserve(snap.counters.size() + snap.gauges.size() +
                 snap.histograms.size());
  for (const auto& [name, v] : snap.counters) {
    SGB_RETURN_IF_ERROR(table->Append(
        Row{Value::Str(name), Value::Str("counter"),
            Value::Double(static_cast<double>(v)), Value::Null(),
            Value::Null(), Value::Null(), Value::Null(), Value::Null(),
            Value::Null(), Value::Null(), Value::Null(), Value::Null()}));
  }
  for (const auto& [name, v] : snap.gauges) {
    SGB_RETURN_IF_ERROR(table->Append(
        Row{Value::Str(name), Value::Str("gauge"), Value::Double(v),
            Value::Null(), Value::Null(), Value::Null(), Value::Null(),
            Value::Null(), Value::Null(), Value::Null(), Value::Null(),
            Value::Null()}));
  }
  for (const auto& [name, h] : snap.histograms) {
    SGB_RETURN_IF_ERROR(table->Append(
        Row{Value::Str(name), Value::Str("histogram"), Value::Null(),
            Value::Int(static_cast<int64_t>(h.count)),
            Value::Int(static_cast<int64_t>(h.sum)),
            Value::Int(static_cast<int64_t>(h.min)),
            Value::Int(static_cast<int64_t>(h.max)), Value::Double(h.mean),
            Value::Double(h.p50), Value::Double(h.p90), Value::Double(h.p95),
            Value::Double(h.p99)}));
  }
  return TablePtr(std::move(table));
}

Schema QueryLogSchema() {
  Schema s;
  s.AddColumn(Column{"id", DataType::kInt64, ""});
  s.AddColumn(Column{"session_id", DataType::kInt64, ""});
  s.AddColumn(Column{"query", DataType::kString, ""});
  s.AddColumn(Column{"status", DataType::kString, ""});
  s.AddColumn(Column{"slow", DataType::kInt64, ""});
  s.AddColumn(Column{"admission", DataType::kString, ""});
  s.AddColumn(Column{"queue_micros", DataType::kInt64, ""});
  s.AddColumn(Column{"plan_micros", DataType::kInt64, ""});
  s.AddColumn(Column{"exec_micros", DataType::kInt64, ""});
  s.AddColumn(Column{"wall_micros", DataType::kInt64, ""});
  s.AddColumn(Column{"cpu_micros", DataType::kInt64, ""});
  s.AddColumn(Column{"rows_in", DataType::kInt64, ""});
  s.AddColumn(Column{"rows_out", DataType::kInt64, ""});
  s.AddColumn(Column{"peak_memory_bytes", DataType::kInt64, ""});
  s.AddColumn(Column{"estimated_bytes", DataType::kInt64, ""});
  s.AddColumn(Column{"spill_events", DataType::kInt64, ""});
  s.AddColumn(Column{"spill_bytes", DataType::kInt64, ""});
  s.AddColumn(Column{"dop", DataType::kInt64, ""});
  s.AddColumn(Column{"tier", DataType::kString, ""});
  s.AddColumn(Column{"est_rows", DataType::kInt64, ""});
  s.AddColumn(Column{"strategy", DataType::kString, ""});
  return s;
}

Schema OperatorStatsSchema() {
  Schema s;
  s.AddColumn(Column{"query_id", DataType::kInt64, ""});
  s.AddColumn(Column{"op_index", DataType::kInt64, ""});
  s.AddColumn(Column{"depth", DataType::kInt64, ""});
  s.AddColumn(Column{"operator", DataType::kString, ""});
  s.AddColumn(Column{"rows", DataType::kInt64, ""});
  s.AddColumn(Column{"batches", DataType::kInt64, ""});
  s.AddColumn(Column{"open_micros", DataType::kInt64, ""});
  s.AddColumn(Column{"next_micros", DataType::kInt64, ""});
  s.AddColumn(Column{"peak_memory_bytes", DataType::kInt64, ""});
  return s;
}

Schema TablesSchema() {
  Schema s;
  s.AddColumn(Column{"name", DataType::kString, ""});
  s.AddColumn(Column{"kind", DataType::kString, ""});
  s.AddColumn(Column{"rows", DataType::kInt64, ""});
  s.AddColumn(Column{"columns", DataType::kInt64, ""});
  s.AddColumn(Column{"bytes", DataType::kInt64, ""});
  return s;
}

/// Stored tables report live row/byte counts; append-only tables report
/// their current snapshot without copying it; virtual tables are listed
/// with NULL sizes (materializing them here would recurse into providers —
/// including this one).
Result<TablePtr> TablesProvider(const Catalog& catalog) {
  auto table = std::make_shared<Table>(TablesSchema());
  for (const std::string& name : catalog.TableNames()) {
    if (catalog.IsVirtual(name)) {
      SGB_RETURN_IF_ERROR(table->Append(
          Row{Value::Str(name), Value::Str("system"), Value::Null(),
              Value::Null(), Value::Null()}));
      continue;
    }
    if (AppendTablePtr appendable = catalog.FindAppendable(name)) {
      SGB_RETURN_IF_ERROR(table->Append(
          Row{Value::Str(name), Value::Str("appendable"),
              Value::Int(static_cast<int64_t>(appendable->SnapshotRows())),
              Value::Int(static_cast<int64_t>(appendable->schema().size())),
              Value::Int(static_cast<int64_t>(appendable->ApproxBytes()))}));
      continue;
    }
    if (storage::PagedTablePtr paged = catalog.FindPaged(name)) {
      SGB_RETURN_IF_ERROR(table->Append(
          Row{Value::Str(name), Value::Str("paged"),
              Value::Int(static_cast<int64_t>(paged->SnapshotRows())),
              Value::Int(static_cast<int64_t>(paged->schema().size())),
              Value::Int(static_cast<int64_t>(paged->ApproxBytes()))}));
      continue;
    }
    Result<TablePtr> stored = catalog.Get(name);
    if (!stored.ok()) return stored.status();
    const Table& t = *stored.value();
    SGB_RETURN_IF_ERROR(table->Append(
        Row{Value::Str(name), Value::Str("table"),
            Value::Int(static_cast<int64_t>(t.NumRows())),
            Value::Int(static_cast<int64_t>(t.schema().size())),
            Value::Int(static_cast<int64_t>(ApproxRowVectorBytes(t.rows())))}));
  }
  return TablePtr(std::move(table));
}

Schema SessionsSchema() {
  Schema s;
  s.AddColumn(Column{"id", DataType::kInt64, ""});
  s.AddColumn(Column{"peer", DataType::kString, ""});
  s.AddColumn(Column{"state", DataType::kString, ""});
  s.AddColumn(Column{"queries", DataType::kInt64, ""});
  s.AddColumn(Column{"errors", DataType::kInt64, ""});
  s.AddColumn(Column{"rows_returned", DataType::kInt64, ""});
  s.AddColumn(Column{"plan_cache_hits", DataType::kInt64, ""});
  s.AddColumn(Column{"plan_cache_misses", DataType::kInt64, ""});
  s.AddColumn(Column{"prepared", DataType::kInt64, ""});
  s.AddColumn(Column{"timeout_ms", DataType::kInt64, ""});
  s.AddColumn(Column{"memory_budget_bytes", DataType::kInt64, ""});
  s.AddColumn(Column{"spill", DataType::kInt64, ""});
  s.AddColumn(Column{"trace", DataType::kInt64, ""});
  s.AddColumn(Column{"parallel", DataType::kInt64, ""});
  s.AddColumn(Column{"admission", DataType::kString, ""});
  return s;
}

Schema StatsSchema() {
  Schema s;
  s.AddColumn(Column{"table_name", DataType::kString, ""});
  s.AddColumn(Column{"column_name", DataType::kString, ""});
  s.AddColumn(Column{"row_count", DataType::kInt64, ""});
  s.AddColumn(Column{"analyzed_rows", DataType::kInt64, ""});
  s.AddColumn(Column{"avg_row_bytes", DataType::kInt64, ""});
  s.AddColumn(Column{"null_count", DataType::kInt64, ""});
  s.AddColumn(Column{"min", DataType::kDouble, ""});
  s.AddColumn(Column{"max", DataType::kDouble, ""});
  s.AddColumn(Column{"ndv", DataType::kInt64, ""});
  s.AddColumn(Column{"grid_axis", DataType::kInt64, ""});
  s.AddColumn(Column{"point_ndv", DataType::kInt64, ""});
  s.AddColumn(Column{"grid_cells", DataType::kInt64, ""});
  return s;
}

/// One row per (analyzed table, column). Table-level figures — row counts,
/// duplicate-point NDV, occupied histogram cells — repeat on every row of
/// their table; `grid_axis` is 1/2 on the histogram's x/y column, NULL on
/// the rest. Tables never ANALYZEd do not appear.
Result<TablePtr> StatsProvider(const Catalog& catalog) {
  auto table = std::make_shared<Table>(StatsSchema());
  for (const std::string& name : catalog.StatsNames()) {
    const stats::TableStatsPtr ts = catalog.GetStats(name);
    if (ts == nullptr) continue;
    const Value point_ndv = ts->grid.has_value()
                                ? Value::Int(static_cast<int64_t>(ts->point_ndv))
                                : Value::Null();
    const Value grid_cells =
        ts->grid.has_value()
            ? Value::Int(static_cast<int64_t>(ts->grid->OccupiedCells()))
            : Value::Null();
    for (size_t i = 0; i < ts->columns.size(); ++i) {
      const stats::ColumnStats& c = ts->columns[i];
      Value axis = Value::Null();
      if (static_cast<int>(i) == ts->grid_col_x) axis = Value::Int(1);
      if (static_cast<int>(i) == ts->grid_col_y) axis = Value::Int(2);
      SGB_RETURN_IF_ERROR(table->Append(
          Row{Value::Str(ts->table), Value::Str(c.name),
              Value::Int(static_cast<int64_t>(ts->row_count)),
              Value::Int(static_cast<int64_t>(ts->analyzed_rows)),
              Value::Int(static_cast<int64_t>(ts->avg_row_bytes)),
              Value::Int(static_cast<int64_t>(c.null_count)),
              c.has_range ? Value::Double(c.min) : Value::Null(),
              c.has_range ? Value::Double(c.max) : Value::Null(),
              Value::Int(static_cast<int64_t>(c.ndv)), axis, point_ndv,
              grid_cells}));
    }
  }
  return TablePtr(std::move(table));
}

const char* AdmissionModeName(AdmissionMode mode) {
  switch (mode) {
    case AdmissionMode::kQueue:
      return "queue";
    case AdmissionMode::kShed:
      return "shed";
    default:
      return "off";
  }
}

}  // namespace

void RegisterSystemTables(Catalog* catalog,
                          std::shared_ptr<obs::QueryLog> query_log,
                          std::shared_ptr<SessionRegistry> sessions) {
  catalog->RegisterProvider("system.metrics", MetricsProvider);

  catalog->RegisterProvider(
      "system.query_log",
      [query_log](const Catalog&) -> Result<TablePtr> {
        auto table = std::make_shared<Table>(QueryLogSchema());
        const auto entries = query_log->Entries();
        table->Reserve(entries.size());
        for (const obs::QueryLogEntry& e : entries) {
          SGB_RETURN_IF_ERROR(table->Append(
              Row{Value::Int(static_cast<int64_t>(e.id)),
                  Value::Int(e.session_id), Value::Str(e.text),
                  Value::Str(e.status), Value::Int(e.slow ? 1 : 0),
                  Value::Str(e.admission), Value::Int(e.queue_micros),
                  Value::Int(e.plan_micros), Value::Int(e.exec_micros),
                  Value::Int(e.wall_micros), Value::Int(e.cpu_micros),
                  Value::Int(e.rows_in), Value::Int(e.rows_out),
                  Value::Int(e.peak_memory_bytes),
                  Value::Int(e.estimated_bytes), Value::Int(e.spill_events),
                  Value::Int(e.spill_bytes), Value::Int(e.dop),
                  Value::Str(e.tier), Value::Int(e.est_rows),
                  Value::Str(e.strategy)}));
        }
        return TablePtr(std::move(table));
      });

  catalog->RegisterProvider(
      "system.operator_stats",
      [query_log](const Catalog&) -> Result<TablePtr> {
        auto table = std::make_shared<Table>(OperatorStatsSchema());
        const auto ops = query_log->OperatorStats();
        table->Reserve(ops.size());
        for (const obs::OperatorStatsEntry& o : ops) {
          SGB_RETURN_IF_ERROR(table->Append(
              Row{Value::Int(static_cast<int64_t>(o.query_id)),
                  Value::Int(o.op_index), Value::Int(o.depth),
                  Value::Str(o.op), Value::Int(o.rows), Value::Int(o.batches),
                  Value::Int(o.open_micros), Value::Int(o.next_micros),
                  Value::Int(o.peak_memory_bytes)}));
        }
        return TablePtr(std::move(table));
      });

  catalog->RegisterProvider("system.tables", TablesProvider);

  catalog->RegisterProvider("system.stats", StatsProvider);

  catalog->RegisterProvider(
      "system.sessions",
      [sessions](const Catalog&) -> Result<TablePtr> {
        auto table = std::make_shared<Table>(SessionsSchema());
        Status status = Status::OK();
        sessions->ForEach([&](const Session& s) {
          if (!status.ok()) return;
          status = table->Append(
              Row{Value::Int(static_cast<int64_t>(s.id())),
                  Value::Str(s.peer()),
                  Value::Str(s.active_queries() > 0 ? "active" : "idle"),
                  Value::Int(static_cast<int64_t>(s.queries())),
                  Value::Int(static_cast<int64_t>(s.errors())),
                  Value::Int(static_cast<int64_t>(s.rows_returned())),
                  Value::Int(static_cast<int64_t>(s.plan_cache_hits())),
                  Value::Int(static_cast<int64_t>(s.plan_cache_misses())),
                  Value::Int(static_cast<int64_t>(s.prepared_count())),
                  Value::Int(s.timeout_ms()),
                  Value::Int(static_cast<int64_t>(s.memory_budget_bytes())),
                  Value::Int(s.spill_enabled() ? 1 : 0),
                  Value::Int(s.trace_enabled() ? 1 : 0),
                  Value::Int(s.default_sgb_dop()),
                  Value::Str(AdmissionModeName(s.admission_mode()))});
        });
        SGB_RETURN_IF_ERROR(status);
        return TablePtr(std::move(table));
      });
}

void RegisterStorageSystemTables(
    Catalog* catalog, std::shared_ptr<storage::StorageEngine> storage) {
  catalog->RegisterProvider(
      "system.buffer_pool",
      [storage](const Catalog&) -> Result<TablePtr> {
        Schema schema;
        schema.AddColumn(Column{"hits", DataType::kInt64, ""});
        schema.AddColumn(Column{"misses", DataType::kInt64, ""});
        schema.AddColumn(Column{"evictions", DataType::kInt64, ""});
        schema.AddColumn(Column{"writebacks", DataType::kInt64, ""});
        schema.AddColumn(Column{"capacity_pages", DataType::kInt64, ""});
        schema.AddColumn(Column{"resident_pages", DataType::kInt64, ""});
        schema.AddColumn(Column{"dirty_pages", DataType::kInt64, ""});
        schema.AddColumn(Column{"pinned_pages", DataType::kInt64, ""});
        schema.AddColumn(Column{"page_size", DataType::kInt64, ""});
        schema.AddColumn(Column{"policy", DataType::kString, ""});
        schema.AddColumn(Column{"checkpoints", DataType::kInt64, ""});
        schema.AddColumn(Column{"wal_bytes", DataType::kInt64, ""});
        schema.AddColumn(Column{"wal_replayed", DataType::kInt64, ""});
        schema.AddColumn(Column{"crashed", DataType::kInt64, ""});
        auto table = std::make_shared<Table>(std::move(schema));
        const storage::BufferPoolStats bp = storage->buffer_stats();
        const storage::StorageStats st = storage->stats();
        SGB_RETURN_IF_ERROR(table->Append(
            Row{Value::Int(static_cast<int64_t>(bp.hits)),
                Value::Int(static_cast<int64_t>(bp.misses)),
                Value::Int(static_cast<int64_t>(bp.evictions)),
                Value::Int(static_cast<int64_t>(bp.writebacks)),
                Value::Int(static_cast<int64_t>(bp.capacity_pages)),
                Value::Int(static_cast<int64_t>(bp.resident_pages)),
                Value::Int(static_cast<int64_t>(bp.dirty_pages)),
                Value::Int(static_cast<int64_t>(bp.pinned_pages)),
                Value::Int(static_cast<int64_t>(bp.page_size)),
                Value::Str(bp.policy),
                Value::Int(static_cast<int64_t>(st.checkpoints)),
                Value::Int(static_cast<int64_t>(st.wal_bytes)),
                Value::Int(static_cast<int64_t>(st.wal_replayed_records)),
                Value::Int(st.crashed ? 1 : 0)}));
        return TablePtr(std::move(table));
      });
}

}  // namespace sgb::engine
