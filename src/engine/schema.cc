#include "engine/schema.h"

namespace sgb::engine {

Schema::Lookup Schema::Find(const std::string& qualifier,
                            const std::string& name) const {
  Lookup result;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != name) continue;
    if (!qualifier.empty() && columns_[i].qualifier != qualifier) continue;
    if (result.outcome == LookupOutcome::kFound) {
      result.outcome = LookupOutcome::kAmbiguous;
      return result;
    }
    result.outcome = LookupOutcome::kFound;
    result.index = i;
  }
  return result;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> columns = left.columns_;
  columns.insert(columns.end(), right.columns_.begin(),
                 right.columns_.end());
  return Schema(std::move(columns));
}

Schema Schema::WithQualifier(const std::string& qualifier) const {
  std::vector<Column> columns = columns_;
  for (Column& c : columns) c.qualifier = qualifier;
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!columns_[i].qualifier.empty()) {
      out += columns_[i].qualifier;
      out += '.';
    }
    out += columns_[i].name;
    out += ' ';
    out += sgb::engine::ToString(columns_[i].type);
  }
  out += ')';
  return out;
}

}  // namespace sgb::engine
