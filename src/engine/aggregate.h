#ifndef SGB_ENGINE_AGGREGATE_H_
#define SGB_ENGINE_AGGREGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/expression.h"

namespace sgb::engine {

/// Aggregate functions available in SELECT lists. Besides the SQL
/// standards, the paper's application queries (Section 5) use:
///  * ARRAY_AGG / LIST_ID — collects the argument values into a
///    "{v1,v2,...}" string (the paper's List-ID user-defined aggregate);
///  * ST_POLYGON(x, y) — WKT polygon of the convex hull of the group's
///    points (the paper's group-enclosing polygon).
enum class AggregateKind {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kArrayAgg,
  kStPolygon,
  kCountDistinct,  ///< count(DISTINCT x)
  kVariance,       ///< var(x) — sample variance (Welford)
  kStddev,         ///< stddev(x) — sample standard deviation
};

const char* ToString(AggregateKind kind);

/// Resolves an aggregate by SQL name (case-insensitive); NotFound when the
/// name is not an aggregate function ("list_id" maps to kArrayAgg).
Result<AggregateKind> AggregateKindFromName(const std::string& name);

/// Number of arguments the aggregate requires.
size_t AggregateArity(AggregateKind kind);

/// One bound aggregate call: the function plus its argument expressions
/// (evaluated against the aggregate input's child rows).
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kCountStar;
  std::vector<ExprPtr> args;
  std::string output_name;
};

/// Per-group accumulator. NULL arguments are ignored by all aggregates
/// except COUNT(*). Empty groups finalize to 0 for counts and NULL
/// otherwise.
class AggregateState {
 public:
  virtual ~AggregateState() = default;
  virtual void Add(const Row& row) = 0;
  virtual Value Finalize() const = 0;
};

std::unique_ptr<AggregateState> CreateAggregateState(
    const AggregateSpec& spec);

/// Result type the aggregate will produce (for output schemas).
DataType AggregateOutputType(AggregateKind kind);

}  // namespace sgb::engine

#endif  // SGB_ENGINE_AGGREGATE_H_
