#ifndef SGB_ENGINE_CSV_H_
#define SGB_ENGINE_CSV_H_

#include <string>

#include "common/status.h"
#include "engine/table.h"

namespace sgb::engine {

struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise columns are named c0, c1, ...
  bool has_header = true;
  /// Maximum bytes in one physical line (0 = unlimited). A defense against
  /// malformed/hostile inputs (e.g. a file with no newlines) ballooning a
  /// single row; exceeding it fails with InvalidArgument naming the line.
  size_t max_line_bytes = 1 << 20;
};

/// Parses CSV text into a Table. Column types are inferred per column from
/// the data rows (INT64 if every non-empty cell parses as an integer,
/// DOUBLE if every non-empty cell parses as a number, STRING otherwise);
/// empty cells become NULL. Quoted fields ("a,b", "" escapes) are
/// supported; CRLF line endings are accepted. A header-only input yields an
/// empty table with the header's schema.
///
/// Errors: InvalidArgument on empty input, ragged rows (named by 1-based
/// line number), unterminated quotes (named by the line the quote opened
/// on), and overlong lines.
Result<TablePtr> ReadCsvFromString(const std::string& text,
                                   const CsvOptions& options = {});

/// ReadCsvFromString over a file's contents.
/// Errors: NotFound when the file cannot be opened.
Result<TablePtr> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Renders a table as CSV (header + rows; strings are quoted when they
/// contain the delimiter, quotes, or newlines; NULL renders as empty).
std::string WriteCsvToString(const Table& table,
                             const CsvOptions& options = {});

/// WriteCsvToString into a file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace sgb::engine

#endif  // SGB_ENGINE_CSV_H_
