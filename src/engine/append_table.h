#ifndef SGB_ENGINE_APPEND_TABLE_H_
#define SGB_ENGINE_APPEND_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/operators.h"
#include "engine/schema.h"
#include "engine/table.h"

namespace sgb::engine {

/// Validates INSERT arity and coerces every value to its column type, in
/// place (int <-> double; NULL always admitted; a string into a numeric
/// column is InvalidArgument). Shared by the append-only (in-memory) and
/// paged (disk-backed) storage backends so both enforce identical typing.
Status CoerceRowsToSchema(const Schema& schema, std::vector<Row>* rows);

/// A mutable, append-only table supporting single-writer-at-a-time appends
/// and fully concurrent lock-free snapshot reads — the storage behind
/// CREATE TABLE / INSERT and the server's multi-session traffic
/// (docs/SERVER.md "Snapshot semantics").
///
/// Storage is chunked: rows live in fixed-size chunks whose addresses never
/// change once allocated, and the published row count is an atomic updated
/// with release ordering only after every row of an Append() is in place.
/// A reader that loads the count with acquire ordering may then index any
/// row below it without locking — it can never see a torn row or a torn
/// statement (an INSERT's rows become visible all at once), and writers
/// never block readers.
///
/// Capacity is bounded at kMaxChunks * kChunkRows rows (the chunk directory
/// is preallocated so it never reallocates under readers); appends beyond
/// that fail with ResourceExhausted.
class AppendOnlyTable {
 public:
  static constexpr size_t kChunkRows = 1024;
  static constexpr size_t kMaxChunks = 8192;  ///< ~8.4M row capacity

  explicit AppendOnlyTable(Schema schema);

  const Schema& schema() const { return schema_; }

  /// The published row count: every row below it is immutable and safe to
  /// read from any thread.
  size_t SnapshotRows() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Row `i`; the caller must have observed SnapshotRows() > i.
  const Row& row(size_t i) const {
    return chunks_[i / kChunkRows][i % kChunkRows];
  }

  /// Appends `rows` as one atomic statement: concurrent snapshots see
  /// either none or all of them. Arity must match the schema; values are
  /// coerced to the column types (int <-> double; NULL always admitted).
  /// Fault site: `engine.append.insert` (once per call).
  Status Append(std::vector<Row> rows);

  /// Approximate resident bytes (for system.tables / admission estimates).
  size_t ApproxBytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Copies the snapshot into a plain immutable Table (Catalog::Get uses
  /// this so non-scan consumers — CSV export, subquery folding — see
  /// append-only tables like any other).
  Table MaterializeSnapshot() const;

 private:
  Schema schema_;
  /// Fixed-size chunk directory: slots are allocated front to back under
  /// `write_mu_`; a slot, once set, never changes. Readers only touch
  /// slots wholly below the published size.
  std::vector<std::unique_ptr<Row[]>> chunks_;
  std::atomic<size_t> size_{0};
  std::atomic<size_t> bytes_{0};
  std::mutex write_mu_;  ///< serializes writers; readers never take it
};

using AppendTablePtr = std::shared_ptr<AppendOnlyTable>;

/// Snapshot scan: pins the table's published row count at Open() and emits
/// exactly those rows, so a scan is repeatable within one execution and
/// never observes concurrent appends mid-flight. Reports name()
/// "TableScan" like the immutable-table scan so rows_in accounting and
/// EXPLAIN output stay uniform.
OperatorPtr MakeAppendScan(std::shared_ptr<const AppendOnlyTable> table,
                           const std::string& qualifier = "");

}  // namespace sgb::engine

#endif  // SGB_ENGINE_APPEND_TABLE_H_
