#ifndef SGB_ENGINE_SCHEMA_H_
#define SGB_ENGINE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "engine/value.h"

namespace sgb::engine {

/// One output column of an operator or stored table. `qualifier` is the
/// table name or alias ("c" in c.c_custkey); empty for derived columns.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
  std::string qualifier;
};

/// An ordered list of columns. Lookup supports both bare and qualified
/// names; a bare name that matches several columns is ambiguous.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  enum class LookupOutcome { kFound, kNotFound, kAmbiguous };
  struct Lookup {
    LookupOutcome outcome = LookupOutcome::kNotFound;
    size_t index = 0;
  };

  /// Finds a column by name; `qualifier` empty means "any qualifier", in
  /// which case the bare name must be unique across the schema.
  Lookup Find(const std::string& qualifier, const std::string& name) const;

  /// Concatenation for joins; all columns keep their qualifiers.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Re-qualifies every column (used when a subquery gets an alias).
  Schema WithQualifier(const std::string& qualifier) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_SCHEMA_H_
