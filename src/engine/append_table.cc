#include "engine/append_table.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"

namespace sgb::engine {

// Armed faults simulate storage exhaustion mid-INSERT; the statement fails
// atomically (no partial rows become visible).
static FaultSite g_append_insert_fault("engine.append.insert",
                                       Status::Code::kResourceExhausted);

namespace {

/// Rough per-row footprint, mirroring ApproxRowVectorBytes's accounting.
size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type() == DataType::kString) bytes += v.AsString().capacity();
  }
  return bytes;
}

/// Coerces `v` to the column type; InvalidArgument when the value cannot
/// represent the column's type (e.g. a string into an INT column).
Result<Value> CoerceToColumn(const Value& v, const Column& col) {
  if (v.is_null()) return Value::Null();
  switch (col.type) {
    case DataType::kInt64:
      if (v.type() == DataType::kInt64) return v;
      if (v.type() == DataType::kDouble) {
        return Value::Int(static_cast<int64_t>(v.AsDouble()));
      }
      break;
    case DataType::kDouble:
      if (v.type() == DataType::kDouble) return v;
      if (v.type() == DataType::kInt64) {
        return Value::Double(static_cast<double>(v.AsInt()));
      }
      break;
    case DataType::kString:
      if (v.type() == DataType::kString) return v;
      break;
    case DataType::kNull:
      return v;  // untyped column admits anything
  }
  return Status::InvalidArgument(
      "cannot store " + std::string(ToString(v.type())) + " value in " +
      std::string(ToString(col.type)) + " column '" + col.name + "'");
}

}  // namespace

Status CoerceRowsToSchema(const Schema& schema, std::vector<Row>* rows) {
  for (Row& row : *rows) {
    if (row.size() != schema.size()) {
      return Status::InvalidArgument(
          "INSERT arity " + std::to_string(row.size()) +
          " does not match table arity " + std::to_string(schema.size()));
    }
    for (size_t c = 0; c < row.size(); ++c) {
      auto coerced = CoerceToColumn(row[c], schema.column(c));
      if (!coerced.ok()) return coerced.status();
      row[c] = std::move(coerced).value();
    }
  }
  return Status::OK();
}

AppendOnlyTable::AppendOnlyTable(Schema schema)
    : schema_(std::move(schema)), chunks_(kMaxChunks) {}

Status AppendOnlyTable::Append(std::vector<Row> rows) {
  SGB_RETURN_IF_ERROR(g_append_insert_fault.Check());
  // Validate + coerce before taking the writer lock; a bad statement
  // appends nothing.
  SGB_RETURN_IF_ERROR(CoerceRowsToSchema(schema_, &rows));

  std::lock_guard<std::mutex> lock(write_mu_);
  const size_t start = size_.load(std::memory_order_relaxed);
  if (start + rows.size() > kMaxChunks * kChunkRows) {
    return Status::ResourceExhausted(
        "append-only table full (" +
        std::to_string(kMaxChunks * kChunkRows) + " row capacity)");
  }
  size_t added_bytes = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t pos = start + i;
    const size_t chunk = pos / kChunkRows;
    if (chunks_[chunk] == nullptr) {
      chunks_[chunk] = std::make_unique<Row[]>(kChunkRows);
    }
    added_bytes += ApproxRowBytes(rows[i]);
    chunks_[chunk][pos % kChunkRows] = std::move(rows[i]);
  }
  bytes_.fetch_add(added_bytes, std::memory_order_relaxed);
  // Publish the whole statement at once: rows (and the chunk slots holding
  // them) are in place before this release store, so an acquire reader
  // that sees the new size sees every row below it.
  size_.store(start + rows.size(), std::memory_order_release);
  return Status::OK();
}

Table AppendOnlyTable::MaterializeSnapshot() const {
  const size_t n = SnapshotRows();
  Table table(schema_);
  table.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Arity was validated on append; Append cannot fail here.
    (void)table.Append(row(i));
  }
  return table;
}

namespace {

/// Volcano scan over one pinned snapshot of an AppendOnlyTable.
class AppendScanOp final : public Operator {
 public:
  AppendScanOp(std::shared_ptr<const AppendOnlyTable> table,
               const std::string& qualifier)
      : table_(std::move(table)),
        schema_(qualifier.empty()
                    ? table_->schema()
                    : table_->schema().WithQualifier(qualifier)) {}

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "TableScan"; }
  std::string label() const override {
    return schema_.size() > 0 && !schema_.column(0).qualifier.empty()
               ? "TableScan " + schema_.column(0).qualifier + " (snapshot)"
               : std::string("TableScan (snapshot)");
  }
  size_t EstimateFootprintBytes() const override {
    return table_->SnapshotRows() *
           (sizeof(Row) + schema_.size() * sizeof(Value));
  }

  void OpenImpl() override {
    // The snapshot pin: everything below `pinned_` is immutable, so the
    // scan needs no further coordination with writers.
    pinned_ = table_->SnapshotRows();
    next_ = 0;
  }
  bool NextImpl(Row* out) override {
    if (next_ >= pinned_) return false;
    *out = table_->row(next_++);
    return true;
  }
  bool NextBatchImpl(RowBatch* out) override {
    const size_t end = std::min(pinned_, next_ + out->capacity());
    for (; next_ < end; ++next_) out->Append(table_->row(next_));
    return !out->empty();
  }

 private:
  std::shared_ptr<const AppendOnlyTable> table_;
  Schema schema_;
  size_t pinned_ = 0;
  size_t next_ = 0;
};

}  // namespace

OperatorPtr MakeAppendScan(std::shared_ptr<const AppendOnlyTable> table,
                           const std::string& qualifier) {
  return std::make_unique<AppendScanOp>(std::move(table), qualifier);
}

}  // namespace sgb::engine
