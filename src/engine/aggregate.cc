#include "engine/aggregate.h"

#include <algorithm>
#include <cctype>

#include <cmath>

#include "geom/convex_hull.h"

namespace sgb::engine {

const char* ToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar:
      return "count(*)";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kAvg:
      return "avg";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kArrayAgg:
      return "array_agg";
    case AggregateKind::kStPolygon:
      return "st_polygon";
    case AggregateKind::kCountDistinct:
      return "count(distinct)";
    case AggregateKind::kVariance:
      return "var";
    case AggregateKind::kStddev:
      return "stddev";
  }
  return "?";
}

Result<AggregateKind> AggregateKindFromName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "count") return AggregateKind::kCount;
  if (lower == "sum") return AggregateKind::kSum;
  if (lower == "avg" || lower == "average") return AggregateKind::kAvg;
  if (lower == "min") return AggregateKind::kMin;
  if (lower == "max") return AggregateKind::kMax;
  if (lower == "array_agg" || lower == "list_id") {
    return AggregateKind::kArrayAgg;
  }
  if (lower == "st_polygon") return AggregateKind::kStPolygon;
  if (lower == "var" || lower == "variance" || lower == "var_samp") {
    return AggregateKind::kVariance;
  }
  if (lower == "stddev" || lower == "stddev_samp" || lower == "stdev") {
    return AggregateKind::kStddev;
  }
  return Status::NotFound("'" + name + "' is not an aggregate function");
}

size_t AggregateArity(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar:
      return 0;
    case AggregateKind::kStPolygon:
      return 2;
    default:
      return 1;
  }
}

DataType AggregateOutputType(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar:
    case AggregateKind::kCount:
      return DataType::kInt64;
    case AggregateKind::kSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return DataType::kDouble;  // best effort; values keep their own type
    case AggregateKind::kAvg:
      return DataType::kDouble;
    case AggregateKind::kArrayAgg:
    case AggregateKind::kStPolygon:
      return DataType::kString;
    case AggregateKind::kCountDistinct:
      return DataType::kInt64;
    case AggregateKind::kVariance:
    case AggregateKind::kStddev:
      return DataType::kDouble;
  }
  return DataType::kNull;
}

namespace {

class CountStarState final : public AggregateState {
 public:
  void Add(const Row&) override { ++count_; }
  Value Finalize() const override { return Value::Int(count_); }

 private:
  int64_t count_ = 0;
};

class CountState final : public AggregateState {
 public:
  explicit CountState(const Expression* arg) : arg_(arg) {}
  void Add(const Row& row) override {
    if (!arg_->Evaluate(row).is_null()) ++count_;
  }
  Value Finalize() const override { return Value::Int(count_); }

 private:
  const Expression* arg_;
  int64_t count_ = 0;
};

class SumState final : public AggregateState {
 public:
  explicit SumState(const Expression* arg) : arg_(arg) {}
  void Add(const Row& row) override {
    const Value v = arg_->Evaluate(row);
    if (v.is_null()) return;
    seen_ = true;
    if (v.type() != DataType::kInt64) all_int_ = false;
    sum_ += v.ToDouble();
  }
  Value Finalize() const override {
    if (!seen_) return Value::Null();
    if (all_int_) return Value::Int(static_cast<int64_t>(sum_));
    return Value::Double(sum_);
  }

 private:
  const Expression* arg_;
  double sum_ = 0.0;
  bool seen_ = false;
  bool all_int_ = true;
};

class AvgState final : public AggregateState {
 public:
  explicit AvgState(const Expression* arg) : arg_(arg) {}
  void Add(const Row& row) override {
    const Value v = arg_->Evaluate(row);
    if (v.is_null()) return;
    sum_ += v.ToDouble();
    ++count_;
  }
  Value Finalize() const override {
    if (count_ == 0) return Value::Null();
    return Value::Double(sum_ / static_cast<double>(count_));
  }

 private:
  const Expression* arg_;
  double sum_ = 0.0;
  int64_t count_ = 0;
};

class MinMaxState final : public AggregateState {
 public:
  MinMaxState(const Expression* arg, bool is_min)
      : arg_(arg), is_min_(is_min) {}
  void Add(const Row& row) override {
    const Value v = arg_->Evaluate(row);
    if (v.is_null()) return;
    if (best_.is_null()) {
      best_ = v;
      return;
    }
    const int c = Value::Compare(v, best_);
    if ((is_min_ && c < 0) || (!is_min_ && c > 0)) best_ = v;
  }
  Value Finalize() const override { return best_; }

 private:
  const Expression* arg_;
  bool is_min_;
  Value best_;
};

class ArrayAggState final : public AggregateState {
 public:
  explicit ArrayAggState(const Expression* arg) : arg_(arg) {}
  void Add(const Row& row) override {
    const Value v = arg_->Evaluate(row);
    if (v.is_null()) return;
    if (!items_.empty()) items_ += ',';
    items_ += v.ToString();
  }
  Value Finalize() const override { return Value::Str("{" + items_ + "}"); }

 private:
  const Expression* arg_;
  std::string items_;
};

class StPolygonState final : public AggregateState {
 public:
  StPolygonState(const Expression* x, const Expression* y) : x_(x), y_(y) {}
  void Add(const Row& row) override {
    const Value x = x_->Evaluate(row);
    const Value y = y_->Evaluate(row);
    if (x.is_null() || y.is_null()) return;
    points_.push_back(geom::Point{x.ToDouble(), y.ToDouble()});
  }
  Value Finalize() const override {
    if (points_.empty()) return Value::Null();
    std::vector<geom::Point> hull = geom::ConvexHull(points_);
    std::string wkt = "POLYGON((";
    auto append = [&wkt](const geom::Point& p) {
      wkt += Value::Double(p.x).ToString();
      wkt += ' ';
      wkt += Value::Double(p.y).ToString();
    };
    for (size_t i = 0; i < hull.size(); ++i) {
      if (i > 0) wkt += ", ";
      append(hull[i]);
    }
    // WKT rings repeat the first vertex at the end.
    if (hull.size() > 1) {
      wkt += ", ";
      append(hull[0]);
    }
    wkt += "))";
    return Value::Str(std::move(wkt));
  }

 private:
  const Expression* x_;
  const Expression* y_;
  std::vector<geom::Point> points_;
};

class CountDistinctState final : public AggregateState {
 public:
  explicit CountDistinctState(const Expression* arg) : arg_(arg) {}
  void Add(const Row& row) override {
    const Value v = arg_->Evaluate(row);
    if (!v.is_null()) seen_.insert(v);
  }
  Value Finalize() const override {
    return Value::Int(static_cast<int64_t>(seen_.size()));
  }

 private:
  const Expression* arg_;
  ValueSet seen_;
};

/// Welford's online algorithm: numerically stable single-pass variance.
class VarianceState final : public AggregateState {
 public:
  VarianceState(const Expression* arg, bool stddev)
      : arg_(arg), stddev_(stddev) {}
  void Add(const Row& row) override {
    const Value v = arg_->Evaluate(row);
    if (v.is_null()) return;
    const double x = v.ToDouble();
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }
  Value Finalize() const override {
    if (count_ < 2) return Value::Null();  // sample variance needs n >= 2
    const double variance = m2_ / static_cast<double>(count_ - 1);
    return Value::Double(stddev_ ? std::sqrt(variance) : variance);
  }

 private:
  const Expression* arg_;
  bool stddev_;
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace

std::unique_ptr<AggregateState> CreateAggregateState(
    const AggregateSpec& spec) {
  const Expression* a0 = spec.args.empty() ? nullptr : spec.args[0].get();
  switch (spec.kind) {
    case AggregateKind::kCountStar:
      return std::make_unique<CountStarState>();
    case AggregateKind::kCount:
      return std::make_unique<CountState>(a0);
    case AggregateKind::kSum:
      return std::make_unique<SumState>(a0);
    case AggregateKind::kAvg:
      return std::make_unique<AvgState>(a0);
    case AggregateKind::kMin:
      return std::make_unique<MinMaxState>(a0, /*is_min=*/true);
    case AggregateKind::kMax:
      return std::make_unique<MinMaxState>(a0, /*is_min=*/false);
    case AggregateKind::kArrayAgg:
      return std::make_unique<ArrayAggState>(a0);
    case AggregateKind::kStPolygon:
      return std::make_unique<StPolygonState>(a0, spec.args[1].get());
    case AggregateKind::kCountDistinct:
      return std::make_unique<CountDistinctState>(a0);
    case AggregateKind::kVariance:
      return std::make_unique<VarianceState>(a0, /*stddev=*/false);
    case AggregateKind::kStddev:
      return std::make_unique<VarianceState>(a0, /*stddev=*/true);
  }
  return nullptr;
}

}  // namespace sgb::engine
