#ifndef SGB_ENGINE_SPILL_H_
#define SGB_ENGINE_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/value.h"

namespace sgb::engine {

/// Out-of-core execution substrate for the blocking operators
/// (docs/ROBUSTNESS.md "Spill-to-disk"): when a memory charge would breach
/// the query budget, hash aggregate / hash join / sort / the SGB drain move
/// their bulk state into temp files managed by this layer and retry
/// per-partition instead of failing with ResourceExhausted.
///
/// The layer has two pieces:
///  * SpillFile — one append-then-scan temp file of rows in a compact
///    binary codec (exact: doubles round-trip bit-for-bit, incl. NaN
///    payloads and ±inf);
///  * SpillPartitionSet — a fan-out of SpillFiles keyed by a level-salted
///    row hash, supporting recursive repartitioning of partitions that
///    still do not fit.
///
/// Temp-file lifecycle: files are created in SpillDirectory() with
/// process-unique names, unlinked in the SpillFile destructor on every
/// path (success, fault, abort), and counted by LiveFileCount() so tests
/// can assert nothing leaks. Fault sites `engine.spill.write` /
/// `engine.spill.read` make both I/O directions fail injectable.

// ---- Row codec ----------------------------------------------------------

/// Appends the binary encoding of `row` to `out`. Layout per row:
/// varint column count, then per value a 1-byte type tag followed by the
/// payload (int64/double: 8 bytes little-endian / raw bit pattern; string:
/// varint length + bytes). Exact for every Value, including NaN bit
/// patterns, ±inf, and empty strings.
void EncodeRow(const Row& row, std::string* out);

/// Decodes one row starting at `*offset`, advancing it past the row.
/// Corruption (truncated payload, unknown tag) returns IoError.
Status DecodeRow(const char* data, size_t size, size_t* offset, Row* out);

// ---- SpillFile ----------------------------------------------------------

/// One spill temp file: append rows, FinishWrites(), then scan (repeatedly;
/// Rewind() restarts). Writes and reads are buffered in kBufferBytes
/// chunks; the file is removed from disk when the object dies.
class SpillFile {
 public:
  static constexpr size_t kBufferBytes = 64 * 1024;

  /// Creates the temp file in `dir` (empty = SpillDirectory()). Fails with
  /// IoError when the directory is not writable.
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& dir);

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  Status Append(const Row& row);

  /// Flushes buffered writes; the file becomes scannable. Idempotent.
  Status FinishWrites();

  /// Restarts the scan from the first row.
  Status Rewind();

  /// Reads the next row into `out`; value() is false at end-of-file.
  Result<bool> Next(Row* out);

  uint64_t rows() const { return rows_; }
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

  /// Resolution order: SGB_SPILL_DIR, TMPDIR, /tmp.
  static std::string SpillDirectory();

  /// Spill files currently alive in this process — the leak check tests
  /// assert this returns to its baseline after every spilling query.
  static uint64_t LiveFileCount();

 private:
  SpillFile(std::string path, std::FILE* file);

  Status FlushWriteBuffer();
  Status RefillReadBuffer();

  std::string path_;
  std::FILE* file_;
  std::string write_buffer_;
  std::string read_buffer_;
  size_t read_offset_ = 0;   ///< consumed prefix of read_buffer_
  bool finished_ = false;
  bool eof_ = false;
  uint64_t rows_ = 0;
  uint64_t bytes_ = 0;
};

// ---- SpillPartitionSet --------------------------------------------------

/// A hash fan-out of spill files. Rows are routed by PartitionOf(hash,
/// level, fanout); the level salts the hash so a recursive repartition of
/// one overflowing partition redistributes its rows instead of mapping
/// them all back into a single child (keys with genuinely identical
/// hashes — e.g. all-duplicate group keys — cannot be redistributed at any
/// level; callers detect that as "no progress" and stop recursing).
class SpillPartitionSet {
 public:
  /// `level` is the recursion depth (0 = first spill); partitions are
  /// created lazily, so an empty partition costs nothing.
  SpillPartitionSet(size_t fanout, int level, std::string dir);

  /// Routes `row` to the partition selected by `key_hash`.
  Status Add(size_t key_hash, const Row& row);

  /// Flushes every partition. Call before reading any of them.
  Status FinishWrites();

  size_t fanout() const { return partitions_.size(); }
  int level() const { return level_; }
  uint64_t rows() const { return rows_; }
  uint64_t bytes() const;
  uint64_t partition_rows(size_t i) const {
    return partitions_[i] == nullptr ? 0 : partitions_[i]->rows();
  }

  /// Transfers ownership of partition `i` (nullptr when it stayed empty).
  std::unique_ptr<SpillFile> TakePartition(size_t i) {
    return std::move(partitions_[i]);
  }

  /// Level-salted partition routing (SplitMix64 of hash ^ level salt), so
  /// each recursion level slices the key space independently.
  static size_t PartitionOf(size_t key_hash, int level, size_t fanout);

 private:
  const int level_;
  const std::string dir_;
  std::vector<std::unique_ptr<SpillFile>> partitions_;
  uint64_t rows_ = 0;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_SPILL_H_
