#ifndef SGB_ENGINE_CATALOG_H_
#define SGB_ENGINE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "common/status.h"
#include "engine/append_table.h"
#include "engine/table.h"
#include "stats/table_stats.h"
#include "storage/paged_table.h"

namespace sgb::engine {

/// Name -> table registry; the planner resolves FROM items against it.
/// Table names are case-insensitive (normalized to lower case).
///
/// Four kinds of entries share the namespace:
///  * *stored* tables — immutable TablePtr snapshots (Register);
///  * *append-only* tables — mutable AppendOnlyTable instances created by
///    CREATE TABLE and fed by INSERT, scanned via pinned snapshots;
///  * *paged* tables — disk-backed storage::PagedTable instances owned by
///    the StorageEngine of a disk-backed Database (docs/STORAGE.md); the
///    engine mirrors its DDL into the catalog so the planner resolves them;
///  * *virtual* tables — a registered provider function is invoked on
///    every lookup and materializes a fresh snapshot (the system.*
///    introspection tables are served this way).
///
/// Thread safety: every method may be called concurrently from any thread
/// (the server's sessions plan, create, and drop tables in parallel). The
/// registry is guarded by a shared mutex; provider callbacks are invoked
/// *after* the lock is released, so a provider may re-enter the catalog
/// (system.tables enumerates it). `version()` increments on every DDL
/// mutation — plan caches use it to invalidate stale plans.
class Catalog {
 public:
  /// Materializes one snapshot of a virtual table. Receives the catalog so
  /// providers like system.tables can enumerate it.
  using TableProviderFn =
      std::function<Result<TablePtr>(const Catalog& catalog)>;

  /// Registers or replaces a stored table.
  void Register(const std::string& name, TablePtr table);

  /// Registers or replaces a virtual table backed by `provider`.
  void RegisterProvider(const std::string& name, TableProviderFn provider);

  /// Creates an empty append-only table. AlreadyExists surfaces as
  /// InvalidArgument unless `if_not_exists`. Const: SQL DDL arrives
  /// through the const Database::Query path; the registry state lives
  /// behind rep_ and is internally synchronized.
  Status CreateAppendable(const std::string& name, Schema schema,
                          bool if_not_exists = false) const;

  /// Drops a stored or append-only table (open snapshot scans keep the
  /// dropped storage alive until they finish). Virtual tables cannot be
  /// dropped; a missing name is NotFound unless `if_exists`.
  Status Drop(const std::string& name, bool if_exists = false) const;

  /// NotFound when no such table is registered. Virtual tables return a
  /// fresh snapshot per call; append-only tables a materialized copy of
  /// the current snapshot (scans use FindAppendable instead — no copy).
  Result<TablePtr> Get(const std::string& name) const;

  /// The append-only table registered under `name`, or null. Scans hold
  /// the returned pointer and pin a row-count snapshot at Open.
  AppendTablePtr FindAppendable(const std::string& name) const;

  /// Mirrors a StorageEngine table into the catalog (disk-backed DDL path).
  /// InvalidArgument when the name is taken by a non-paged entry.
  Status RegisterPaged(const std::string& name,
                       storage::PagedTablePtr table) const;

  /// The paged table registered under `name`, or null. Scans hold the
  /// returned pointer and pin a row-count snapshot at Open.
  storage::PagedTablePtr FindPaged(const std::string& name) const;

  bool IsPaged(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Stored, append-only, and virtual table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Stored table names only (no providers/appendables), sorted.
  std::vector<std::string> StoredTableNames() const;

  bool IsVirtual(const std::string& name) const;
  bool IsAppendable(const std::string& name) const;

  /// Statistics lifecycle. Stats are immutable shared snapshots keyed by
  /// table name; ANALYZE swaps in a fresh snapshot and bumps version() so
  /// session plan caches re-plan against the new statistics. Const for the
  /// same reason as CreateAppendable: internally synchronized state reached
  /// through the const query path.
  void SetStats(const std::string& name, stats::TableStatsPtr s) const;

  /// Stats for `name`, or null when the table was never analyzed.
  stats::TableStatsPtr GetStats(const std::string& name) const;

  /// Incremental refresh: adds `delta` to the stored stats' live row count
  /// (INSERT path; no-op when the table has no stats). Bumps version() —
  /// invalidating cached plans — only once the cumulative growth since the
  /// last bump reaches 10% of the analyzed row count, so insert-heavy
  /// workloads keep their plan cache. Returns whether a bump happened.
  bool AddStatsRowDelta(const std::string& name, uint64_t delta) const;

  /// Names of tables with statistics, sorted.
  std::vector<std::string> StatsNames() const;

  /// Monotone DDL counter: bumped by Register/RegisterProvider/
  /// CreateAppendable/Drop, by SetStats (ANALYZE), and by
  /// AddStatsRowDelta when growth crosses its refresh threshold. A cached
  /// plan built at version v is safe to reuse while version() == v.
  uint64_t version() const {
    return rep_->version.load(std::memory_order_acquire);
  }

  Catalog() : rep_(std::make_unique<Rep>()) {}
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

 private:
  // Mutexes and atomics are not movable; the state lives behind a pointer
  // so Database (which embeds a Catalog) can be returned by value.
  struct StatsEntry {
    stats::TableStatsPtr stats;
    uint64_t rows_at_bump = 0;  ///< live row count at the last version bump
  };

  struct Rep {
    mutable std::shared_mutex mu;
    std::map<std::string, TablePtr> tables;
    std::map<std::string, AppendTablePtr> appendables;
    std::map<std::string, storage::PagedTablePtr> paged;
    std::map<std::string, TableProviderFn> providers;
    std::map<std::string, StatsEntry> stats;
    std::atomic<uint64_t> version{0};
  };

  void BumpVersion() const {
    rep_->version.fetch_add(1, std::memory_order_acq_rel);
  }

  std::unique_ptr<Rep> rep_;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_CATALOG_H_
