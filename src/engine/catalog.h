#ifndef SGB_ENGINE_CATALOG_H_
#define SGB_ENGINE_CATALOG_H_

#include <map>
#include <string>

#include "common/status.h"
#include "engine/table.h"

namespace sgb::engine {

/// Name -> table registry; the planner resolves FROM items against it.
/// Table names are case-insensitive (normalized to lower case).
class Catalog {
 public:
  /// Registers or replaces a table.
  void Register(const std::string& name, TablePtr table);

  /// NotFound when no such table is registered.
  Result<TablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_CATALOG_H_
