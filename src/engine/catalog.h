#ifndef SGB_ENGINE_CATALOG_H_
#define SGB_ENGINE_CATALOG_H_

#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "engine/table.h"

namespace sgb::engine {

/// Name -> table registry; the planner resolves FROM items against it.
/// Table names are case-insensitive (normalized to lower case).
///
/// Besides stored tables the catalog serves *virtual* tables: a registered
/// provider function is invoked on every lookup and materializes a fresh
/// snapshot (the system.* introspection tables — live metrics, the query
/// log — are served this way, so a SELECT always sees current state). From
/// the planner's point of view a provider is indistinguishable from a
/// stored table; filters, aggregates, joins, and SGB compose untouched.
class Catalog {
 public:
  /// Materializes one snapshot of a virtual table. Receives the catalog so
  /// providers like system.tables can enumerate it.
  using TableProviderFn =
      std::function<Result<TablePtr>(const Catalog& catalog)>;

  /// Registers or replaces a table.
  void Register(const std::string& name, TablePtr table);

  /// Registers or replaces a virtual table backed by `provider`.
  void RegisterProvider(const std::string& name, TableProviderFn provider);

  /// NotFound when no such table is registered. Virtual tables return a
  /// fresh snapshot per call.
  Result<TablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Stored and virtual table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Stored table names only (no providers), sorted.
  std::vector<std::string> StoredTableNames() const;

  bool IsVirtual(const std::string& name) const;

 private:
  std::map<std::string, TablePtr> tables_;
  std::map<std::string, TableProviderFn> providers_;
};

}  // namespace sgb::engine

#endif  // SGB_ENGINE_CATALOG_H_
