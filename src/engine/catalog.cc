#include "engine/catalog.h"

#include <algorithm>
#include <cctype>
#include <mutex>
#include <utility>
#include <vector>

namespace sgb::engine {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

void Catalog::Register(const std::string& name, TablePtr table) {
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    const std::string key = Lower(name);
    rep_->tables[key] = std::move(table);
    rep_->appendables.erase(key);
    rep_->stats.erase(key);  // replacing a table invalidates its statistics
  }
  BumpVersion();
}

void Catalog::RegisterProvider(const std::string& name,
                               TableProviderFn provider) {
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    rep_->providers[Lower(name)] = std::move(provider);
  }
  BumpVersion();
}

Status Catalog::CreateAppendable(const std::string& name, Schema schema,
                                 bool if_not_exists) const {
  const std::string key = Lower(name);
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    const bool exists = rep_->tables.count(key) > 0 ||
                        rep_->appendables.count(key) > 0 ||
                        rep_->paged.count(key) > 0 ||
                        rep_->providers.count(key) > 0;
    if (exists) {
      if (if_not_exists) return Status::OK();
      return Status::InvalidArgument("table '" + name + "' already exists");
    }
    rep_->appendables[key] = std::make_shared<AppendOnlyTable>(
        std::move(schema));
  }
  BumpVersion();
  return Status::OK();
}

Status Catalog::Drop(const std::string& name, bool if_exists) const {
  const std::string key = Lower(name);
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    if (rep_->providers.count(key) > 0) {
      return Status::InvalidArgument("cannot drop system table '" + name +
                                     "'");
    }
    if (rep_->tables.erase(key) == 0 && rep_->appendables.erase(key) == 0 &&
        rep_->paged.erase(key) == 0) {
      if (if_exists) return Status::OK();
      return Status::NotFound("no table named '" + name + "'");
    }
    rep_->stats.erase(key);
  }
  BumpVersion();
  return Status::OK();
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  const std::string key = Lower(name);
  TableProviderFn provider;
  {
    std::shared_lock<std::shared_mutex> lock(rep_->mu);
    const auto it = rep_->tables.find(key);
    if (it != rep_->tables.end()) return it->second;
    const auto ait = rep_->appendables.find(key);
    if (ait != rep_->appendables.end()) {
      return TablePtr(
          std::make_shared<Table>(ait->second->MaterializeSnapshot()));
    }
    const auto git = rep_->paged.find(key);
    if (git != rep_->paged.end()) {
      auto snapshot = git->second->MaterializeSnapshot();
      if (!snapshot.ok()) return snapshot.status();
      return TablePtr(
          std::make_shared<Table>(std::move(snapshot).value()));
    }
    const auto pit = rep_->providers.find(key);
    if (pit == rep_->providers.end()) {
      return Status::NotFound("no table named '" + name + "'");
    }
    // Invoke outside the lock: providers (system.tables) re-enter the
    // catalog, and shared_mutex is not reentrant.
    provider = pit->second;
  }
  return provider(*this);
}

AppendTablePtr Catalog::FindAppendable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  const auto it = rep_->appendables.find(Lower(name));
  return it == rep_->appendables.end() ? nullptr : it->second;
}

Status Catalog::RegisterPaged(const std::string& name,
                              storage::PagedTablePtr table) const {
  const std::string key = Lower(name);
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    const bool conflict = rep_->tables.count(key) > 0 ||
                          rep_->appendables.count(key) > 0 ||
                          rep_->providers.count(key) > 0;
    if (conflict) {
      return Status::InvalidArgument("table '" + name + "' already exists");
    }
    rep_->paged[key] = std::move(table);
  }
  BumpVersion();
  return Status::OK();
}

storage::PagedTablePtr Catalog::FindPaged(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  const auto it = rep_->paged.find(Lower(name));
  return it == rep_->paged.end() ? nullptr : it->second;
}

bool Catalog::IsPaged(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  return rep_->paged.count(Lower(name)) > 0;
}

bool Catalog::Contains(const std::string& name) const {
  const std::string key = Lower(name);
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  return rep_->tables.count(key) > 0 || rep_->appendables.count(key) > 0 ||
         rep_->paged.count(key) > 0 || rep_->providers.count(key) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  std::vector<std::string> names;
  names.reserve(rep_->tables.size() + rep_->appendables.size() +
                rep_->paged.size() + rep_->providers.size());
  for (const auto& [name, table] : rep_->tables) names.push_back(name);
  for (const auto& [name, table] : rep_->appendables) names.push_back(name);
  for (const auto& [name, table] : rep_->paged) names.push_back(name);
  for (const auto& [name, provider] : rep_->providers) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Catalog::StoredTableNames() const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  std::vector<std::string> names;
  names.reserve(rep_->tables.size());
  for (const auto& [name, table] : rep_->tables) names.push_back(name);
  return names;
}

bool Catalog::IsVirtual(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  return rep_->providers.count(Lower(name)) > 0;
}

void Catalog::SetStats(const std::string& name, stats::TableStatsPtr s) const {
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    StatsEntry& entry = rep_->stats[Lower(name)];
    entry.rows_at_bump = s ? s->row_count : 0;
    entry.stats = std::move(s);
  }
  BumpVersion();
}

stats::TableStatsPtr Catalog::GetStats(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  const auto it = rep_->stats.find(Lower(name));
  return it == rep_->stats.end() ? nullptr : it->second.stats;
}

bool Catalog::AddStatsRowDelta(const std::string& name,
                               uint64_t delta) const {
  bool bump = false;
  {
    std::unique_lock<std::shared_mutex> lock(rep_->mu);
    const auto it = rep_->stats.find(Lower(name));
    if (it == rep_->stats.end() || it->second.stats == nullptr) return false;
    auto updated = std::make_shared<stats::TableStats>(*it->second.stats);
    updated->row_count += delta;
    const uint64_t threshold =
        std::max<uint64_t>(1, updated->analyzed_rows / 10);
    if (updated->row_count - it->second.rows_at_bump >= threshold) {
      it->second.rows_at_bump = updated->row_count;
      bump = true;
    }
    it->second.stats = std::move(updated);
  }
  if (bump) BumpVersion();
  return bump;
}

std::vector<std::string> Catalog::StatsNames() const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  std::vector<std::string> names;
  names.reserve(rep_->stats.size());
  for (const auto& [name, entry] : rep_->stats) names.push_back(name);
  return names;
}

bool Catalog::IsAppendable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(rep_->mu);
  return rep_->appendables.count(Lower(name)) > 0;
}

}  // namespace sgb::engine
