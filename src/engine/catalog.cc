#include "engine/catalog.h"

#include <algorithm>
#include <cctype>

namespace sgb::engine {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

void Catalog::Register(const std::string& name, TablePtr table) {
  tables_[Lower(name)] = std::move(table);
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  const auto it = tables_.find(Lower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

bool Catalog::Contains(const std::string& name) const {
  return tables_.count(Lower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace sgb::engine
