#include "engine/catalog.h"

#include <algorithm>
#include <cctype>

namespace sgb::engine {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

void Catalog::Register(const std::string& name, TablePtr table) {
  tables_[Lower(name)] = std::move(table);
}

void Catalog::RegisterProvider(const std::string& name,
                               TableProviderFn provider) {
  providers_[Lower(name)] = std::move(provider);
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  const std::string key = Lower(name);
  const auto it = tables_.find(key);
  if (it != tables_.end()) return it->second;
  const auto pit = providers_.find(key);
  if (pit != providers_.end()) return pit->second(*this);
  return Status::NotFound("no table named '" + name + "'");
}

bool Catalog::Contains(const std::string& name) const {
  const std::string key = Lower(name);
  return tables_.count(key) > 0 || providers_.count(key) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size() + providers_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  for (const auto& [name, provider] : providers_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Catalog::StoredTableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

bool Catalog::IsVirtual(const std::string& name) const {
  return providers_.count(Lower(name)) > 0;
}

}  // namespace sgb::engine
