#include "stats/table_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sgb::stats {

uint64_t MixHash(uint64_t h) {
  // splitmix64 finalizer.
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

void DistinctSketch::Add(uint64_t raw_hash) {
  const uint64_t h = MixHash(raw_hash);
  auto it = std::lower_bound(hashes_.begin(), hashes_.end(), h);
  if (it != hashes_.end() && *it == h) return;
  if (hashes_.size() >= kCapacity) {
    if (it == hashes_.end()) return;  // larger than every kept minimum
    hashes_.pop_back();
  }
  hashes_.insert(std::lower_bound(hashes_.begin(), hashes_.end(), h), h);
}

uint64_t DistinctSketch::Estimate() const {
  if (hashes_.size() < kCapacity) return hashes_.size();
  // KMV: with k minima, NDV ≈ (k - 1) / normalized kth minimum.
  const double kth = static_cast<double>(hashes_.back()) /
                     static_cast<double>(std::numeric_limits<uint64_t>::max());
  if (kth <= 0.0) return hashes_.size();
  const double est = (static_cast<double>(kCapacity) - 1.0) / kth;
  return static_cast<uint64_t>(est);
}

void GridHistogram::SetBounds(double min_x, double max_x, double min_y,
                              double max_y) {
  min_x_ = min_x;
  max_x_ = max_x;
  min_y_ = min_y;
  max_y_ = max_y;
  cells_x_ = max_x > min_x ? kGrid : 1;
  cells_y_ = max_y > min_y ? kGrid : 1;
  cell_w_ = max_x > min_x ? (max_x - min_x) / cells_x_ : 0.0;
  cell_h_ = max_y > min_y ? (max_y - min_y) / cells_y_ : 0.0;
  total_ = 0;
  counts_.assign(static_cast<size_t>(cells_x_) * cells_y_, 0);
}

void GridHistogram::Add(double x, double y) {
  if (!std::isfinite(x) || !std::isfinite(y)) return;
  int cx = 0;
  int cy = 0;
  if (cell_w_ > 0) {
    cx = static_cast<int>((x - min_x_) / cell_w_);
    cx = std::clamp(cx, 0, cells_x_ - 1);
  }
  if (cell_h_ > 0) {
    cy = static_cast<int>((y - min_y_) / cell_h_);
    cy = std::clamp(cy, 0, cells_y_ - 1);
  }
  ++counts_[static_cast<size_t>(cy) * cells_x_ + cx];
  ++total_;
}

size_t GridHistogram::OccupiedCells() const {
  size_t occupied = 0;
  for (uint64_t c : counts_) occupied += c > 0 ? 1 : 0;
  return occupied;
}

namespace {

/// Measure of the ε-ball under a metric, in d effective dimensions (axes
/// with non-zero extent). 1-D balls are intervals of length 2ε for every
/// metric; 0-D means all points coincide.
double BallMeasure(double epsilon, const std::string& metric, int dims) {
  if (dims <= 0) return 1.0;
  if (dims == 1) return 2.0 * epsilon;
  if (metric == "l1" || metric == "manhattan") return 2.0 * epsilon * epsilon;
  if (metric == "linf" || metric == "chebyshev" || metric == "max") {
    return 4.0 * epsilon * epsilon;
  }
  return 3.14159265358979323846 * epsilon * epsilon;  // l2 / euclidean
}

/// Overlap length of [lo1, hi1] and [lo2, hi2].
double Overlap(double lo1, double hi1, double lo2, double hi2) {
  return std::max(0.0, std::min(hi1, hi2) - std::max(lo1, lo2));
}

}  // namespace

double GridHistogram::EstimatePairs(double epsilon, const std::string& metric,
                                    double scale) const {
  const double n = static_cast<double>(total_) * scale;
  if (n <= 1.0 || epsilon <= 0.0) return 0.0;
  const int dims = (cell_w_ > 0 ? 1 : 0) + (cell_h_ > 0 ? 1 : 0);
  if (dims == 0) return n * (n - 1.0) / 2.0;  // every point coincides

  const double ball = BallMeasure(epsilon, metric, dims);
  double pairs = 0.0;
  for (int iy = 0; iy < cells_y_; ++iy) {
    for (int ix = 0; ix < cells_x_; ++ix) {
      const double ni =
          static_cast<double>(counts_[static_cast<size_t>(iy) * cells_x_ + ix]) *
          scale;
      if (ni <= 0.0) continue;
      // ε-expanded neighborhood rectangle of this cell.
      const double nx_lo = min_x_ + ix * cell_w_ - epsilon;
      const double nx_hi = min_x_ + (ix + 1) * cell_w_ + epsilon;
      const double ny_lo = min_y_ + iy * cell_h_ - epsilon;
      const double ny_hi = min_y_ + (iy + 1) * cell_h_ + epsilon;
      double measure = 1.0;
      if (cell_w_ > 0) measure *= nx_hi - nx_lo;
      if (cell_h_ > 0) measure *= ny_hi - ny_lo;

      // Mass inside the neighborhood: cells weighted by overlap fraction.
      const int jx_lo =
          cell_w_ > 0
              ? std::max(0, static_cast<int>((nx_lo - min_x_) / cell_w_))
              : 0;
      const int jx_hi =
          cell_w_ > 0
              ? std::min(cells_x_ - 1, static_cast<int>((nx_hi - min_x_) / cell_w_))
              : 0;
      const int jy_lo =
          cell_h_ > 0
              ? std::max(0, static_cast<int>((ny_lo - min_y_) / cell_h_))
              : 0;
      const int jy_hi =
          cell_h_ > 0
              ? std::min(cells_y_ - 1, static_cast<int>((ny_hi - min_y_) / cell_h_))
              : 0;
      double mass = 0.0;
      for (int jy = jy_lo; jy <= jy_hi; ++jy) {
        double fy = 1.0;
        if (cell_h_ > 0) {
          const double lo = min_y_ + jy * cell_h_;
          fy = Overlap(lo, lo + cell_h_, ny_lo, ny_hi) / cell_h_;
        }
        for (int jx = jx_lo; jx <= jx_hi; ++jx) {
          double fx = 1.0;
          if (cell_w_ > 0) {
            const double lo = min_x_ + jx * cell_w_;
            fx = Overlap(lo, lo + cell_w_, nx_lo, nx_hi) / cell_w_;
          }
          mass +=
              static_cast<double>(
                  counts_[static_cast<size_t>(jy) * cells_x_ + jx]) *
              scale * fx * fy;
        }
      }
      if (measure <= 0.0) continue;
      // Average ε-neighbors of a point in this cell, self excluded.
      double k = std::max(0.0, (mass - 1.0)) / measure * ball;
      k = std::min(k, n - 1.0);
      pairs += ni * k / 2.0;
    }
  }
  return pairs;
}

double GridHistogram::EstimateGroups(double epsilon, const std::string& metric,
                                     double scale) const {
  const double n = static_cast<double>(total_) * scale;
  if (n <= 0.0) return 0.0;
  return EstimateGroupsFromPairs(n, EstimatePairs(epsilon, metric, scale),
                                 /*transitive=*/false);
}

double TableStats::EstimateEpsilonPairs(double epsilon,
                                        const std::string& metric,
                                        double selectivity) const {
  const double n = static_cast<double>(row_count) * selectivity;
  if (n <= 1.0) return 0.0;
  if (!grid.has_value() || grid->total() == 0) return n * (n - 1.0) / 2.0;
  const double scale = ScaleFactor() * selectivity;
  double pairs = grid->EstimatePairs(epsilon, metric, scale);
  // Exact-duplicate pairs (distance 0): with d distinct points and uniform
  // multiplicity m = n₀/d, duplicate pairs = d * C(m, 2); thinning by s
  // scales them by s², giving n²/(2d) - s·n/2 in live-row terms.
  if (point_ndv > 0) {
    const double d = static_cast<double>(point_ndv) * ScaleFactor();
    pairs += std::max(0.0, n * n / (2.0 * d) - selectivity * n / 2.0);
  }
  return std::min(pairs, n * (n - 1.0) / 2.0);
}

double EstimateGroupsFromPairs(double n, double pairs, bool transitive) {
  if (n <= 0.0) return 0.0;
  const double avg_neighbors = 2.0 * pairs / n;
  const double groups =
      transitive
          ? n * std::exp(-std::max(0.6 * avg_neighbors, avg_neighbors - 1.0))
          : n / (1.0 + avg_neighbors / 4.0);
  return std::clamp(groups, 1.0, n);
}

double TableStats::EstimateEpsilonGroups(double epsilon,
                                         const std::string& metric,
                                         double selectivity,
                                         bool transitive) const {
  const double n = static_cast<double>(row_count) * selectivity;
  if (n <= 0.0) return 0.0;
  if (!grid.has_value() || grid->total() == 0) {
    return std::max(1.0, std::sqrt(n));
  }
  return EstimateGroupsFromPairs(
      n, EstimateEpsilonPairs(epsilon, metric, selectivity), transitive);
}

const ColumnStats* TableStats::FindColumn(const std::string& name) const {
  for (const ColumnStats& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

uint64_t TableStats::ColumnNdv(const std::string& name) const {
  const ColumnStats* c = FindColumn(name);
  return c != nullptr ? c->ndv : 0;
}

TableStats ComputeTableStats(const std::string& name,
                             const engine::Table& table) {
  TableStats stats;
  stats.table = name;
  stats.row_count = table.NumRows();
  stats.analyzed_rows = table.NumRows();

  const engine::Schema& schema = table.schema();
  stats.columns.resize(schema.size());
  std::vector<DistinctSketch> sketches(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    stats.columns[i].name = schema.column(i).name;
  }

  // Pick the grid axes: the first two columns that hold numeric data.
  uint64_t bytes = 0;
  for (const engine::Row& row : table.rows()) {
    bytes += sizeof(engine::Row) + row.size() * sizeof(engine::Value);
    for (size_t i = 0; i < row.size() && i < schema.size(); ++i) {
      const engine::Value& v = row[i];
      ColumnStats& col = stats.columns[i];
      if (v.is_null()) {
        ++col.null_count;
        continue;
      }
      sketches[i].Add(v.Hash());
      if (v.type() == engine::DataType::kString) {
        bytes += v.AsString().size();
        continue;
      }
      const double d = v.ToDouble();
      if (!std::isfinite(d)) continue;
      if (!col.has_range) {
        col.has_range = true;
        col.min = d;
        col.max = d;
      } else {
        col.min = std::min(col.min, d);
        col.max = std::max(col.max, d);
      }
    }
  }
  for (size_t i = 0; i < schema.size(); ++i) {
    stats.columns[i].ndv = sketches[i].Estimate();
  }
  stats.avg_row_bytes =
      table.NumRows() > 0 ? bytes / table.NumRows() : sizeof(engine::Row);

  int gx = -1;
  int gy = -1;
  for (size_t i = 0; i < stats.columns.size(); ++i) {
    if (!stats.columns[i].has_range) continue;
    if (gx < 0) {
      gx = static_cast<int>(i);
    } else if (gy < 0) {
      gy = static_cast<int>(i);
      break;
    }
  }
  if (gx >= 0 && gy >= 0) {
    stats.grid_col_x = gx;
    stats.grid_col_y = gy;
    GridHistogram grid;
    grid.SetBounds(stats.columns[gx].min, stats.columns[gx].max,
                   stats.columns[gy].min, stats.columns[gy].max);
    DistinctSketch points;
    for (const engine::Row& row : table.rows()) {
      const engine::Value& vx = row[static_cast<size_t>(gx)];
      const engine::Value& vy = row[static_cast<size_t>(gy)];
      if (!vx.IsNumeric() || !vy.IsNumeric()) continue;
      grid.Add(vx.ToDouble(), vy.ToDouble());
      points.Add(MixHash(vx.Hash()) * 31 + vy.Hash());
    }
    stats.point_ndv = points.Estimate();
    stats.grid = std::move(grid);
  }
  return stats;
}

}  // namespace sgb::stats
