#ifndef SGB_STATS_TABLE_STATS_H_
#define SGB_STATS_TABLE_STATS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/table.h"

namespace sgb::stats {

/// Per-column summary collected by ANALYZE: null count, numeric min/max,
/// and a distinct-count estimate from a bounded KMV (k-minimum-values)
/// hash sketch. Strings participate in NDV and null counts but have no
/// numeric range.
struct ColumnStats {
  std::string name;
  uint64_t null_count = 0;
  bool has_range = false;  ///< min/max hold at least one finite numeric
  double min = 0.0;
  double max = 0.0;
  uint64_t ndv = 0;  ///< estimated distinct non-null values
};

/// Bounded distinct-count sketch: keeps the k smallest mixed 64-bit hashes
/// seen. Below capacity the estimate is exact; at capacity it is the
/// classic KMV estimator (k-1) / kth-minimum-normalized.
class DistinctSketch {
 public:
  static constexpr size_t kCapacity = 1024;

  void Add(uint64_t raw_hash);
  uint64_t Estimate() const;

 private:
  std::vector<uint64_t> hashes_;  ///< sorted ascending, distinct, <= kCapacity
};

/// 64-bit finalizer (splitmix64) applied to engine hashes before sketching;
/// std::hash on integers is near-identity on common stdlibs, which would
/// wreck order statistics.
uint64_t MixHash(uint64_t h);

/// Equi-width 2-D grid density histogram over the table's first two numeric
/// columns (the "point" columns of the check-in workloads). Drives
/// ε-selectivity estimation: expected ε-close pair counts and expected
/// similarity-group counts, the inputs to SGB tier selection.
class GridHistogram {
 public:
  static constexpr int kGrid = 24;  ///< kGrid x kGrid cells

  /// Fixes the bounding box. Degenerate extents (max == min) collapse that
  /// axis to a single cell and estimation treats the data as 1-D (or 0-D).
  void SetBounds(double min_x, double max_x, double min_y, double max_y);
  void Add(double x, double y);

  uint64_t total() const { return total_; }
  size_t OccupiedCells() const;

  double min_x() const { return min_x_; }
  double max_x() const { return max_x_; }
  double min_y() const { return min_y_; }
  double max_y() const { return max_y_; }
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Expected number of unordered point pairs within `epsilon` under the
  /// given metric ("l2", "l1", or "linf"), assuming uniform density within
  /// each cell. `scale` multiplies every cell count (incremental row-count
  /// refresh scales densities without re-scanning).
  double EstimatePairs(double epsilon, const std::string& metric,
                       double scale = 1.0) const;

  /// Expected number of ε-connected groups: n / (1 + avg ε-neighbors).
  /// Exact for isolated points (k̄=0 ⇒ n groups) and for tight equal-size
  /// clusters (k̄ ≈ m-1 ⇒ n/m groups); a heuristic in between.
  double EstimateGroups(double epsilon, const std::string& metric,
                        double scale = 1.0) const;

 private:
  int cells_x_ = kGrid;
  int cells_y_ = kGrid;
  double min_x_ = 0, max_x_ = 0, min_y_ = 0, max_y_ = 0;
  double cell_w_ = 0, cell_h_ = 0;  ///< 0 on a degenerate axis
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
};

/// Everything ANALYZE knows about one table. Stored in the Catalog (shared,
/// immutable snapshots — refreshes swap in a new copy) and exposed through
/// the system.stats virtual table.
struct TableStats {
  std::string table;
  uint64_t row_count = 0;      ///< live rows (refreshed on INSERT deltas)
  uint64_t analyzed_rows = 0;  ///< rows scanned by the last ANALYZE
  uint64_t avg_row_bytes = 0;  ///< mean materialized row footprint
  std::vector<ColumnStats> columns;

  /// Histogram over columns grid_col_x/grid_col_y (the first two numeric
  /// columns); absent when the table has fewer than two numeric columns.
  std::optional<GridHistogram> grid;
  int grid_col_x = -1;
  int grid_col_y = -1;

  /// Distinct (x, y) point count over the grid columns. Separates true
  /// duplicates (distance 0, always ε-close) from the smooth density the
  /// histogram models — lattice/check-in data repeats exact coordinates.
  uint64_t point_ndv = 0;

  /// row_count / analyzed_rows: how much the table grew since ANALYZE.
  double ScaleFactor() const {
    if (analyzed_rows == 0) return 1.0;
    return static_cast<double>(row_count) / static_cast<double>(analyzed_rows);
  }

  /// ε-pair / ε-group estimates scaled to the live row count, further
  /// thinned by `selectivity` (the fraction of rows a WHERE below the SGB
  /// keeps — modeled as uniform sampling, so pair density scales with its
  /// square). Fall back to pessimistic closed forms when no histogram
  /// exists. `transitive` picks the group model: false = SGB-All (groups
  /// are ε-diameter-bounded, so they pack like ε/2-balls), true = SGB-Any
  /// (groups are connected components, which collapse exponentially with
  /// the average neighbor count).
  double EstimateEpsilonPairs(double epsilon, const std::string& metric,
                              double selectivity = 1.0) const;
  double EstimateEpsilonGroups(double epsilon, const std::string& metric,
                               double selectivity = 1.0,
                               bool transitive = false) const;

  /// NDV of one column by name (0 when unknown).
  uint64_t ColumnNdv(const std::string& name) const;
  const ColumnStats* FindColumn(const std::string& name) const;
};

using TableStatsPtr = std::shared_ptr<const TableStats>;

/// Expected group count for n points with `pairs` ε-close pairs, i.e. an
/// average of k̄ = 2·pairs/n neighbors per point. Both forms are calibrated
/// against measured group counts on uniform point sets (docs/PLANNER.md
/// "Calibration"):
///  * SGB-All (`transitive` false): members pairwise ε-close bounds a
///    group's diameter by ε, so groups pack like balls of radius ε/2
///    holding ~k̄/4 points each: n / (1 + k̄/4).
///  * SGB-Any (`transitive` true): connected components of the ε-graph,
///    n·exp(−max(0.6·k̄, k̄−1)) — the exponent is sub-linear while small
///    clusters merge, then linear once the giant component absorbs them.
double EstimateGroupsFromPairs(double n, double pairs, bool transitive);

/// Full-scan statistics build — the ANALYZE implementation.
TableStats ComputeTableStats(const std::string& name,
                             const engine::Table& table);

}  // namespace sgb::stats

#endif  // SGB_STATS_TABLE_STATS_H_
