#ifndef SGB_SQL_PARSER_H_
#define SGB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace sgb::sql {

/// Parses one SELECT statement (an optional trailing ';' is accepted).
///
/// Supported grammar (keywords case-insensitive):
///
///   SELECT { * | expr [AS alias] , ... }
///   FROM   { table | ( select ) } [AS] alias , ...
///   [WHERE expr]
///   [GROUP BY expr, ... [similarity_spec]]
///   [HAVING expr]
///   [ORDER BY expr [ASC|DESC], ...]
///   [LIMIT n]
///
///   similarity_spec :=
///       DISTANCE-TO-ALL [metric] WITHIN n [USING metric]
///           [ON-OVERLAP {JOIN-ANY | ELIMINATE | FORM-NEW-GROUP}]
///     | DISTANCE-TO-ANY [metric] WITHIN n [USING metric]
///     | MAXIMUM_ELEMENT_SEPARATION n [MAXIMUM_GROUP_DIAMETER n]
///     | AROUND (n, ...) [MAXIMUM_ELEMENT_SEPARATION n]
///                       [MAXIMUM_GROUP_DIAMETER n]
///     | DELIMITED BY (n, ...)
///
/// The paper's Table 2 shorthand is also accepted: DISTANCE-ALL /
/// DISTANCE-ANY, FORM-NEW, and metric names LTWO (=L2) and LONE (=LINF).
/// Expressions support + - * /, comparisons, AND/OR/NOT, IN (list or
/// uncorrelated subquery), DATE 'yyyy-mm-dd' literals, BETWEEN a AND b,
/// and aggregate calls including count(*).
Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& sql);

/// Parses a full statement: `[EXPLAIN [ANALYZE]] SELECT ...`. The EXPLAIN
/// prefix selects plan rendering (see ExplainMode); the wrapped SELECT uses
/// the grammar above.
Result<ParsedStatement> ParseStatement(const std::string& sql);

}  // namespace sgb::sql

#endif  // SGB_SQL_PARSER_H_
