#ifndef SGB_SQL_PLANNER_H_
#define SGB_SQL_PLANNER_H_

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/operators.h"
#include "sql/ast.h"

namespace sgb::sql {

/// Binds a parsed SELECT against the catalog and produces an executable
/// operator tree (mirroring the paper's Section 8.2: the planner routes
/// GROUP BY clauses with similarity specifications to the SGB physical
/// operators and plain GROUP BY to the hash aggregate).
///
/// Planning decisions:
///  * FROM items are joined left-to-right; WHERE conjuncts of the form
///    left.col = right.col become hash-join keys, the rest become filters.
///  * Uncorrelated IN (SELECT ...) subqueries are executed at plan time and
///    folded into an in-set probe.
///  * DISTANCE-TO-ALL / DISTANCE-TO-ANY require exactly two GROUP BY
///    expressions; the 1-D clauses require exactly one.
///
/// Session-level planning knobs.
struct PlannerOptions {
  /// Degree of parallelism given to SGB operators when the query carries no
  /// PARALLEL clause: 1 = serial (default), k > 1 = up to k workers,
  /// 0 = auto (one worker per hardware thread). A PARALLEL clause on the
  /// query always wins. Results are identical at every setting
  /// (docs/PARALLELISM.md).
  int default_sgb_dop = 1;
};

/// Errors: BindError / NotSupported with context.
Result<engine::OperatorPtr> PlanQuery(const engine::Catalog& catalog,
                                      const SelectStatement& stmt);

Result<engine::OperatorPtr> PlanQuery(const engine::Catalog& catalog,
                                      const SelectStatement& stmt,
                                      const PlannerOptions& options);

}  // namespace sgb::sql

#endif  // SGB_SQL_PLANNER_H_
