#ifndef SGB_SQL_PLANNER_H_
#define SGB_SQL_PLANNER_H_

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/operators.h"
#include "sql/ast.h"

namespace sgb::sql {

/// Binds a parsed SELECT against the catalog and produces an executable
/// operator tree (mirroring the paper's Section 8.2: the planner routes
/// GROUP BY clauses with similarity specifications to the SGB physical
/// operators and plain GROUP BY to the hash aggregate).
///
/// Planning decisions:
///  * FROM items are joined left-to-right; WHERE conjuncts of the form
///    left.col = right.col become hash-join keys, the rest become filters.
///  * Uncorrelated IN (SELECT ...) subqueries are executed at plan time and
///    folded into an in-set probe.
///  * DISTANCE-TO-ALL / DISTANCE-TO-ANY require exactly two GROUP BY
///    expressions; the 1-D clauses require exactly one.
///
/// SGB tier policy (SET sgb_tier). kAuto consults the cost model when the
/// scanned table has statistics and falls back to the historical default
/// (Indexed) otherwise; the other values force a tier. SGB-Any has no
/// bounds-checking tier, so kBounds maps to Indexed there.
enum class TierPolicy {
  kAuto,
  kAllPairs,
  kBounds,
  kIndexed,
};

/// Plain GROUP BY strategy (SET agg_strategy). kAuto uses the cost model's
/// hash-vs-sort regime rules when statistics exist, hash otherwise.
enum class AggStrategy {
  kAuto,
  kHash,
  kSort,
};

/// Session-level planning knobs.
struct PlannerOptions {
  /// Degree of parallelism given to SGB operators when the query carries no
  /// PARALLEL clause: 1 = serial (default), k > 1 = up to k workers,
  /// 0 = auto (one worker per hardware thread). A PARALLEL clause on the
  /// query always wins; with neither, the cost model may raise the dop for
  /// predictably large similarity workloads. Results are identical at every
  /// setting (docs/PARALLELISM.md).
  int default_sgb_dop = 1;
  TierPolicy sgb_tier = TierPolicy::kAuto;
  AggStrategy agg_strategy = AggStrategy::kAuto;
  /// Memory headroom the hash-vs-sort regime rules compare hash-table
  /// footprints against (the statement's budget; 0 = unbounded).
  size_t memory_budget_bytes = 0;
  /// Whether the statement may spill. The sort aggregate cannot spill, so
  /// the auto strategy never picks it when spilling is on.
  bool spill_enabled = false;
};

/// What the cost model decided for one planned statement: the executor
/// copies this into the query log and the admission controller uses the
/// byte estimate. Zero/empty fields mean "no statistics were available".
struct PlanInfo {
  double est_rows = 0;     ///< estimated rows out of the plan root
  double est_bytes = 0;    ///< estimated peak operator footprint
  std::string tier;        ///< chosen SGB tier ("" when the plan has no SGB)
  std::string strategy;    ///< "hash" | "sort" for plain GROUP BY, "" else
  std::string reason;      ///< one-line justification of the choice
  int chosen_dop = 0;      ///< dop the SGB operator actually got
  bool used_stats = false; ///< estimates derived from ANALYZE statistics
};

/// Errors: BindError / NotSupported with context.
Result<engine::OperatorPtr> PlanQuery(const engine::Catalog& catalog,
                                      const SelectStatement& stmt);

Result<engine::OperatorPtr> PlanQuery(const engine::Catalog& catalog,
                                      const SelectStatement& stmt,
                                      const PlannerOptions& options);

Result<engine::OperatorPtr> PlanQuery(const engine::Catalog& catalog,
                                      const SelectStatement& stmt,
                                      const PlannerOptions& options,
                                      PlanInfo* info);

const char* ToString(TierPolicy policy);
const char* ToString(AggStrategy strategy);

}  // namespace sgb::sql

#endif  // SGB_SQL_PLANNER_H_
