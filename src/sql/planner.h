#ifndef SGB_SQL_PLANNER_H_
#define SGB_SQL_PLANNER_H_

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/operators.h"
#include "sql/ast.h"

namespace sgb::sql {

/// Binds a parsed SELECT against the catalog and produces an executable
/// operator tree (mirroring the paper's Section 8.2: the planner routes
/// GROUP BY clauses with similarity specifications to the SGB physical
/// operators and plain GROUP BY to the hash aggregate).
///
/// Planning decisions:
///  * FROM items are joined left-to-right; WHERE conjuncts of the form
///    left.col = right.col become hash-join keys, the rest become filters.
///  * Uncorrelated IN (SELECT ...) subqueries are executed at plan time and
///    folded into an in-set probe.
///  * DISTANCE-TO-ALL / DISTANCE-TO-ANY require exactly two GROUP BY
///    expressions; the 1-D clauses require exactly one.
///
/// Errors: BindError / NotSupported with context.
Result<engine::OperatorPtr> PlanQuery(const engine::Catalog& catalog,
                                      const SelectStatement& stmt);

}  // namespace sgb::sql

#endif  // SGB_SQL_PLANNER_H_
