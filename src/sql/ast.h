#ifndef SGB_SQL_AST_H_
#define SGB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sgb_types.h"
#include "engine/expression.h"
#include "engine/schema.h"
#include "engine/value.h"
#include "geom/point.h"

namespace sgb::sql {

struct SelectStatement;

/// Unbound expression tree produced by the parser; the planner binds it
/// against operator schemas.
struct ParsedExpr {
  enum class Kind {
    kColumn,       ///< [qualifier.]name
    kLiteral,      ///< number / string / DATE 'x'
    kBinary,       ///< left op right
    kUnaryMinus,   ///< -operand (stored in left)
    kNot,          ///< NOT operand (stored in left)
    kFunction,     ///< name(args...) or name(*)
    kInList,       ///< left IN (e1, e2, ...)  with args = values
    kInSubquery,   ///< left IN (SELECT ...)
  };

  Kind kind = Kind::kLiteral;

  // kColumn
  std::string qualifier;
  std::string name;

  // kLiteral
  engine::Value literal;

  // kBinary / unary (unary uses only `left`)
  engine::BinaryOp op = engine::BinaryOp::kEq;
  std::unique_ptr<ParsedExpr> left;
  std::unique_ptr<ParsedExpr> right;

  // kFunction / kInList
  std::string function_name;
  std::vector<std::unique_ptr<ParsedExpr>> args;
  bool star_arg = false;      ///< count(*)
  bool distinct_arg = false;  ///< count(DISTINCT x)

  // kInSubquery
  std::unique_ptr<SelectStatement> subquery;

  /// Canonical text form; the planner uses it to match select-list
  /// expressions against GROUP BY expressions.
  std::string ToText() const;
};

using ParsedExprPtr = std::unique_ptr<ParsedExpr>;

/// The similarity specification attached to a GROUP BY clause.
struct SimilarityClause {
  enum class Kind {
    kNone,          ///< plain (equality) GROUP BY
    kAll,           ///< DISTANCE-TO-ALL ... WITHIN ε ON-OVERLAP ...
    kAny,           ///< DISTANCE-TO-ANY ... WITHIN ε
    kUnsupervised,  ///< MAXIMUM_ELEMENT_SEPARATION s [MAXIMUM_GROUP_DIAMETER]
    kAround,        ///< AROUND (c1, ...) [limits]
    kDelimited,     ///< DELIMITED BY (d1, ...)
  };

  Kind kind = Kind::kNone;

  // kAll / kAny
  geom::Metric metric = geom::Metric::kL2;
  double epsilon = 0.0;
  core::OverlapClause on_overlap = core::OverlapClause::kJoinAny;
  /// PARALLEL <n> (0 = auto); unset means the session default applies.
  std::optional<int> dop;

  // 1-D variants
  std::optional<double> max_separation;
  std::optional<double> max_diameter;
  std::vector<double> centers;
  std::vector<double> delimiters;
};

/// The event-time window of a continuous query (docs/STREAMING.md):
///   WINDOW TUMBLING <size> ON <col>
///   WINDOW SLIDING <size> ADVANCE <adv> ON <col>
/// Sizes are in the units of the (numeric) time column. A tumbling window
/// is a sliding window whose advance equals its size.
struct WindowClause {
  enum class Kind {
    kTumbling,
    kSliding,
  };

  Kind kind = Kind::kTumbling;
  double size = 0.0;
  double advance = 0.0;  ///< tumbling: set equal to size by the parser
  std::string time_column;
};

struct SelectItem {
  ParsedExprPtr expr;
  std::string alias;  // empty when none given
};

/// FROM item: a base table or a parenthesized subquery, with an optional
/// alias.
struct TableRef {
  std::string table_name;  // empty for subqueries
  std::unique_ptr<SelectStatement> subquery;
  std::string alias;
};

struct OrderItem {
  ParsedExprPtr expr;
  bool ascending = true;
};

struct SelectStatement {
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ParsedExprPtr where;
  std::vector<ParsedExprPtr> group_by;
  SimilarityClause similarity;
  ParsedExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
  /// Only valid inside CREATE CONTINUOUS QUERY; the batch planner rejects
  /// windowed SELECTs.
  std::optional<WindowClause> window;
};

/// How a statement's plan should be surfaced.
enum class ExplainMode {
  kNone,     ///< run the query, return its rows
  kPlan,     ///< EXPLAIN: render the physical plan without executing
  kAnalyze,  ///< EXPLAIN ANALYZE: execute, render the plan with counters
};

/// SET <knob> = <n | ident> — session-level governance knobs:
///   SET timeout = <ms>            (0 disables the deadline)
///   SET memory_budget = <bytes>   (0 removes the budget)
///   SET parallel = <dop>          (session default DOP; 0 = auto)
///   SET spill = <0|1>             (out-of-core fallback for budget breaches)
///   SET admission = queue|shed|off  (admission control mode)
///   SET admission_budget = <bytes>  (admission headroom; 0 = engine limit)
///   SET trace = <0|1>             (capture spans into the session TraceLog)
///   SET slow_query_micros = <us>  (slow-query threshold; 0 disables)
///   SET sgb_tier = auto|all_pairs|bounds|indexed  (SGB tier; auto = cost model)
///   SET agg_strategy = auto|hash|sort  (plain GROUP BY strategy)
struct SetStatement {
  std::string name;  ///< knob name, lower-cased by the parser
  int64_t value = 0;
  /// Identifier-valued settings (SET admission = queue); empty for
  /// integer-valued ones. Lower-cased by the parser.
  std::string text_value;
};

/// CREATE TABLE [IF NOT EXISTS] name (col TYPE, ...) — creates an empty
/// append-only table. Types: INT/INTEGER/BIGINT, DOUBLE/FLOAT/REAL,
/// TEXT/STRING/VARCHAR.
struct CreateTableStatement {
  std::string table;
  bool if_not_exists = false;
  std::vector<engine::Column> columns;
};

/// INSERT INTO name VALUES (lit, ...), (lit, ...) — literal rows only
/// (NULL, optionally signed numbers, strings). One statement appends
/// atomically: concurrent snapshot scans see all of its rows or none.
struct InsertStatement {
  std::string table;
  std::vector<engine::Row> rows;
};

/// DROP TABLE [IF EXISTS] name.
struct DropTableStatement {
  std::string table;
  bool if_exists = false;
};

/// ANALYZE [name] — full-scans the named table (or, with no name, every
/// stored and append-only table) and stores fresh statistics in the
/// catalog: row count, per-column min/max/NDV/null counts, and a 2-D grid
/// density histogram over the first two numeric columns. Bumps the catalog
/// version so cached plans re-plan against the new statistics.
struct AnalyzeStatement {
  std::string table;  ///< empty = all stored + append-only tables
};

/// CREATE CONTINUOUS QUERY [IF NOT EXISTS] name AS SELECT ... WINDOW ... —
/// registers an incrementally maintained similarity group-by over an
/// append-only table (docs/STREAMING.md). The inner SELECT must carry a
/// SIMILARITY GROUP BY (DISTANCE-TO-ALL/ANY) and a WINDOW clause.
struct CreateContinuousStatement {
  std::string name;
  bool if_not_exists = false;
  std::unique_ptr<SelectStatement> select;
};

/// DROP CONTINUOUS QUERY [IF EXISTS] name.
struct DropContinuousStatement {
  std::string name;
  bool if_exists = false;
};

/// CHECKPOINT — flushes every dirty page, fsyncs the segments, atomically
/// publishes a new storage manifest, and truncates the WAL (docs/STORAGE.md
/// "Checkpoint protocol"). Only valid on a disk-backed database.
struct CheckpointStatement {};

/// A full parsed statement: an optional EXPLAIN [ANALYZE] or PROFILE
/// prefix wrapping one SELECT; or a SET / CREATE TABLE / INSERT /
/// DROP TABLE statement (exactly one of the optionals engaged, `select`
/// null). PROFILE executes the statement and returns its span tree as rows
/// (one per span) instead of the statement's own result.
struct ParsedStatement {
  ExplainMode explain = ExplainMode::kNone;
  bool profile = false;
  std::unique_ptr<SelectStatement> select;
  std::optional<SetStatement> set;
  std::optional<CreateTableStatement> create;
  std::optional<InsertStatement> insert;
  std::optional<DropTableStatement> drop;
  std::optional<AnalyzeStatement> analyze;
  std::optional<CreateContinuousStatement> create_continuous;
  std::optional<DropContinuousStatement> drop_continuous;
  std::optional<CheckpointStatement> checkpoint;
};

}  // namespace sgb::sql

#endif  // SGB_SQL_AST_H_
