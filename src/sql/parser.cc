#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <initializer_list>

#include "sql/lexer.h"

namespace sgb::sql {

namespace {

using engine::BinaryOp;
using engine::Value;

bool EqualsCi(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

/// Identifiers that terminate expressions/aliases in clause positions.
bool IsReservedWord(const std::string& word) {
  static const char* kReserved[] = {
      "SELECT",  "FROM",     "WHERE",   "GROUP",     "BY",      "HAVING",
      "ORDER",   "LIMIT",    "AS",      "AND",       "OR",      "NOT",
      "IN",      "ASC",      "DESC",    "DISTANCE",  "WITHIN",  "USING",
      "ON",      "OVERLAP",  "AROUND",  "DELIMITED", "BETWEEN", "DATE",
      "DISTINCT", "WINDOW",
      "MAXIMUM_ELEMENT_SEPARATION",     "MAXIMUM_GROUP_DIAMETER",
  };
  for (const char* r : kReserved) {
    if (EqualsCi(word, r)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    auto select = ParseSelect();
    if (!select.ok()) return select.status();
    Match(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return std::move(select).value();
  }

  Result<ParsedStatement> ParseFullStatement() {
    ParsedStatement out;
    if (MatchKw("SET")) {
      auto set = ParseSet();
      if (!set.ok()) return set.status();
      out.set = std::move(set).value();
      return FinishNonSelect(std::move(out));
    }
    if (MatchKw("CREATE")) {
      if (MatchKw("CONTINUOUS")) {
        auto create = ParseCreateContinuous();
        if (!create.ok()) return create.status();
        out.create_continuous = std::move(create).value();
        return FinishNonSelect(std::move(out));
      }
      auto create = ParseCreateTable();
      if (!create.ok()) return create.status();
      out.create = std::move(create).value();
      return FinishNonSelect(std::move(out));
    }
    if (MatchKw("INSERT")) {
      auto insert = ParseInsert();
      if (!insert.ok()) return insert.status();
      out.insert = std::move(insert).value();
      return FinishNonSelect(std::move(out));
    }
    if (MatchKw("DROP")) {
      if (MatchKw("CONTINUOUS")) {
        auto drop = ParseDropContinuous();
        if (!drop.ok()) return drop.status();
        out.drop_continuous = std::move(drop).value();
        return FinishNonSelect(std::move(out));
      }
      auto drop = ParseDropTable();
      if (!drop.ok()) return drop.status();
      out.drop = std::move(drop).value();
      return FinishNonSelect(std::move(out));
    }
    if (MatchKw("ANALYZE")) {
      AnalyzeStatement analyze;
      if (Peek().type == TokenType::kIdent) {
        analyze.table = Consume().text;
        // Qualified names (system.tables) so the executor can reject
        // virtual tables by their catalog name rather than a parse error.
        while (Peek().type == TokenType::kDot) {
          Consume();
          if (Peek().type != TokenType::kIdent) {
            return Status::ParseError("ANALYZE: expected name after '.'");
          }
          analyze.table += "." + Consume().text;
        }
      }
      out.analyze = std::move(analyze);
      return FinishNonSelect(std::move(out));
    }
    if (MatchKw("CHECKPOINT")) {
      out.checkpoint = CheckpointStatement{};
      return FinishNonSelect(std::move(out));
    }
    if (MatchKw("PROFILE")) {
      out.profile = true;
    } else if (MatchKw("EXPLAIN")) {
      out.explain =
          MatchKw("ANALYZE") ? ExplainMode::kAnalyze : ExplainMode::kPlan;
    }
    auto select = ParseStatement();
    if (!select.ok()) return select.status();
    out.select = std::move(select).value();
    return out;
  }

 private:
  // ---- token helpers ----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  Token Consume() {
    Token t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool Match(TokenType type) {
    if (Peek().type != type) return false;
    Consume();
    return true;
  }

  Status Expect(TokenType type, const char* what) {
    if (!Match(type)) {
      return Status::ParseError(std::string("expected ") + what +
                                " at offset " +
                                std::to_string(Peek().position));
    }
    return Status::OK();
  }

  bool PeekKw(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdent && EqualsCi(t.text, kw);
  }

  bool MatchKw(const char* kw) {
    if (!PeekKw(kw)) return false;
    Consume();
    return true;
  }

  Status ExpectKw(const char* kw) {
    if (!MatchKw(kw)) {
      return Status::ParseError(std::string("expected keyword ") + kw +
                                " at offset " +
                                std::to_string(Peek().position));
    }
    return Status::OK();
  }

  // ---- SET --------------------------------------------------------------

  /// `SET <ident> = <integer | ident>` (the '=' is optional). Knob names
  /// and identifier values are lower-cased here; validation of the
  /// name/value is the executor's job, where the set of live knobs is
  /// known.
  Result<SetStatement> ParseSet() {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected a setting name after SET");
    }
    SetStatement out;
    out.name = Consume().text;
    std::transform(out.name.begin(), out.name.end(), out.name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    Match(TokenType::kEq);
    // Identifier or string values ('2q' needs the quotes: a leading digit
    // cannot lex as an identifier).
    if (Peek().type == TokenType::kIdent ||
        Peek().type == TokenType::kString) {
      out.text_value = Consume().text;
      std::transform(out.text_value.begin(), out.text_value.end(),
                     out.text_value.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      return out;
    }
    if (Peek().type != TokenType::kNumber || !Peek().is_integer) {
      return Error("expected an integer or identifier value in SET");
    }
    out.value = static_cast<int64_t>(Consume().number);
    return out;
  }

  /// Consumes the optional trailing ';' of a SET/CREATE/INSERT/DROP
  /// statement and rejects trailing input.
  Result<ParsedStatement> FinishNonSelect(ParsedStatement out) {
    Match(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return out;
  }

  Result<std::string> ParseTableName(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return Consume().text;
  }

  /// CREATE TABLE [IF NOT EXISTS] name (col TYPE, ...)
  Result<CreateTableStatement> ParseCreateTable() {
    SGB_RETURN_IF_ERROR(ExpectKw("TABLE"));
    CreateTableStatement out;
    if (PeekKw("IF")) {
      Consume();
      SGB_RETURN_IF_ERROR(ExpectKw("NOT"));
      SGB_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      out.if_not_exists = true;
    }
    auto name = ParseTableName("table name after CREATE TABLE");
    if (!name.ok()) return name.status();
    out.table = std::move(name).value();
    SGB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      if (Peek().type != TokenType::kIdent) {
        return Error("expected column name");
      }
      engine::Column col;
      col.name = Consume().text;
      if (Peek().type != TokenType::kIdent) {
        return Error("expected column type");
      }
      const std::string type = Consume().text;
      if (EqualsCi(type, "INT") || EqualsCi(type, "INTEGER") ||
          EqualsCi(type, "BIGINT")) {
        col.type = engine::DataType::kInt64;
      } else if (EqualsCi(type, "DOUBLE") || EqualsCi(type, "FLOAT") ||
                 EqualsCi(type, "REAL")) {
        col.type = engine::DataType::kDouble;
      } else if (EqualsCi(type, "TEXT") || EqualsCi(type, "STRING") ||
                 EqualsCi(type, "VARCHAR")) {
        col.type = engine::DataType::kString;
      } else {
        return Error("unknown column type '" + type +
                     "' (expected INT, DOUBLE, or TEXT)");
      }
      out.columns.push_back(std::move(col));
    } while (Match(TokenType::kComma));
    SGB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (out.columns.empty()) {
      return Error("CREATE TABLE requires at least one column");
    }
    return out;
  }

  /// One literal of an INSERT row: NULL, [-]number, or 'string'.
  Result<Value> ParseInsertLiteral() {
    if (MatchKw("NULL")) return Value::Null();
    bool negate = false;
    if (Match(TokenType::kMinus)) negate = true;
    const Token& t = Peek();
    if (t.type == TokenType::kNumber) {
      const Token tok = Consume();
      if (tok.is_integer) {
        const int64_t v = static_cast<int64_t>(tok.number);
        return Value::Int(negate ? -v : v);
      }
      return Value::Double(negate ? -tok.number : tok.number);
    }
    if (!negate && t.type == TokenType::kString) {
      return Value::Str(Consume().text);
    }
    return Error("expected a literal value in INSERT");
  }

  /// INSERT INTO name VALUES (lit, ...), (lit, ...)
  Result<InsertStatement> ParseInsert() {
    SGB_RETURN_IF_ERROR(ExpectKw("INTO"));
    InsertStatement out;
    auto name = ParseTableName("table name after INSERT INTO");
    if (!name.ok()) return name.status();
    out.table = std::move(name).value();
    SGB_RETURN_IF_ERROR(ExpectKw("VALUES"));
    do {
      SGB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      engine::Row row;
      do {
        auto lit = ParseInsertLiteral();
        if (!lit.ok()) return lit.status();
        row.push_back(std::move(lit).value());
      } while (Match(TokenType::kComma));
      SGB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      out.rows.push_back(std::move(row));
    } while (Match(TokenType::kComma));
    return out;
  }

  /// CREATE CONTINUOUS QUERY [IF NOT EXISTS] name AS SELECT ...
  /// (the leading CREATE CONTINUOUS is consumed by the caller)
  Result<CreateContinuousStatement> ParseCreateContinuous() {
    SGB_RETURN_IF_ERROR(ExpectKw("QUERY"));
    CreateContinuousStatement out;
    if (PeekKw("IF")) {
      Consume();
      SGB_RETURN_IF_ERROR(ExpectKw("NOT"));
      SGB_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      out.if_not_exists = true;
    }
    auto name = ParseTableName("query name after CREATE CONTINUOUS QUERY");
    if (!name.ok()) return name.status();
    out.name = std::move(name).value();
    SGB_RETURN_IF_ERROR(ExpectKw("AS"));
    auto select = ParseSelect();
    if (!select.ok()) return select.status();
    out.select = std::move(select).value();
    return out;
  }

  /// DROP CONTINUOUS QUERY [IF EXISTS] name
  /// (the leading DROP CONTINUOUS is consumed by the caller)
  Result<DropContinuousStatement> ParseDropContinuous() {
    SGB_RETURN_IF_ERROR(ExpectKw("QUERY"));
    DropContinuousStatement out;
    if (PeekKw("IF")) {
      Consume();
      SGB_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      out.if_exists = true;
    }
    auto name = ParseTableName("query name after DROP CONTINUOUS QUERY");
    if (!name.ok()) return name.status();
    out.name = std::move(name).value();
    return out;
  }

  /// DROP TABLE [IF EXISTS] name
  Result<DropTableStatement> ParseDropTable() {
    SGB_RETURN_IF_ERROR(ExpectKw("TABLE"));
    DropTableStatement out;
    if (PeekKw("IF")) {
      Consume();
      SGB_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      out.if_exists = true;
    }
    auto name = ParseTableName("table name after DROP TABLE");
    if (!name.ok()) return name.status();
    out.table = std::move(name).value();
    return out;
  }

  /// Matches a multi-word keyword whose words may be separated by '-' or
  /// whitespace: DISTANCE-TO-ALL, ON OVERLAP, FORM-NEW-GROUP, ...
  bool MatchWords(std::initializer_list<const char*> words) {
    const size_t saved = pos_;
    bool first = true;
    for (const char* word : words) {
      if (!first) Match(TokenType::kMinus);  // optional separator
      if (!MatchKw(word)) {
        pos_ = saved;
        return false;
      }
      first = false;
    }
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().position));
  }

  // ---- grammar ----------------------------------------------------------

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    SGB_RETURN_IF_ERROR(ExpectKw("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();

    if (Match(TokenType::kStar)) {
      stmt->select_star = true;
    } else {
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        SelectItem item;
        item.expr = std::move(expr).value();
        if (MatchKw("AS")) {
          if (Peek().type != TokenType::kIdent) return Error("expected alias");
          item.alias = Consume().text;
        } else if (Peek().type == TokenType::kIdent &&
                   !IsReservedWord(Peek().text)) {
          item.alias = Consume().text;
        }
        stmt->items.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }

    SGB_RETURN_IF_ERROR(ExpectKw("FROM"));
    do {
      TableRef ref;
      if (Match(TokenType::kLParen)) {
        auto sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        ref.subquery = std::move(sub).value();
        SGB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      } else {
        if (Peek().type != TokenType::kIdent) return Error("expected table");
        ref.table_name = Consume().text;
        // Dotted names (system.query_log) are a single catalog entry, not
        // a schema hierarchy.
        if (Match(TokenType::kDot)) {
          if (Peek().type != TokenType::kIdent) {
            return Error("expected table name after '.'");
          }
          ref.table_name += "." + Consume().text;
        }
      }
      if (MatchKw("AS")) {
        if (Peek().type != TokenType::kIdent) return Error("expected alias");
        ref.alias = Consume().text;
      } else if (Peek().type == TokenType::kIdent &&
                 !IsReservedWord(Peek().text)) {
        ref.alias = Consume().text;
      }
      if (ref.subquery != nullptr && ref.alias.empty()) {
        return Error("FROM subquery requires an alias");
      }
      stmt->from.push_back(std::move(ref));
    } while (Match(TokenType::kComma));

    if (MatchKw("WHERE")) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      stmt->where = std::move(expr).value();
    }

    if (MatchKw("GROUP")) {
      SGB_RETURN_IF_ERROR(ExpectKw("BY"));
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        stmt->group_by.push_back(std::move(expr).value());
      } while (Match(TokenType::kComma));
      SGB_RETURN_IF_ERROR(ParseSimilarity(&stmt->similarity));
    }

    if (MatchKw("WINDOW")) {
      WindowClause w;
      if (MatchKw("TUMBLING")) {
        w.kind = WindowClause::Kind::kTumbling;
      } else if (MatchKw("SLIDING")) {
        w.kind = WindowClause::Kind::kSliding;
      } else {
        return Error("expected TUMBLING or SLIDING after WINDOW");
      }
      auto size = ParseNumber();
      if (!size.ok()) return size.status();
      w.size = size.value();
      if (w.kind == WindowClause::Kind::kSliding) {
        SGB_RETURN_IF_ERROR(ExpectKw("ADVANCE"));
        auto advance = ParseNumber();
        if (!advance.ok()) return advance.status();
        w.advance = advance.value();
      } else {
        w.advance = w.size;
      }
      SGB_RETURN_IF_ERROR(ExpectKw("ON"));
      if (Peek().type != TokenType::kIdent) {
        return Error("expected time column after WINDOW ... ON");
      }
      w.time_column = Consume().text;
      stmt->window = std::move(w);
    }

    if (MatchKw("HAVING")) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      stmt->having = std::move(expr).value();
    }

    if (MatchKw("ORDER")) {
      SGB_RETURN_IF_ERROR(ExpectKw("BY"));
      do {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        OrderItem item;
        item.expr = std::move(expr).value();
        if (MatchKw("DESC")) {
          item.ascending = false;
        } else {
          MatchKw("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }

    if (MatchKw("LIMIT")) {
      if (Peek().type != TokenType::kNumber || !Peek().is_integer) {
        return Error("expected integer LIMIT");
      }
      stmt->limit = static_cast<size_t>(Consume().number);
    }
    return stmt;
  }

  Result<double> ParseNumber() {
    const bool negative = Match(TokenType::kMinus);
    if (Peek().type != TokenType::kNumber) {
      return Status::ParseError("expected a number at offset " +
                                std::to_string(Peek().position));
    }
    const double v = Consume().number;
    return negative ? -v : v;
  }

  Result<std::vector<double>> ParseNumberList() {
    SGB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    std::vector<double> values;
    do {
      auto v = ParseNumber();
      if (!v.ok()) return v.status();
      values.push_back(v.value());
    } while (Match(TokenType::kComma));
    SGB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return values;
  }

  bool MatchMetric(geom::Metric* metric) {
    if (MatchKw("L2") || MatchKw("LTWO")) {
      *metric = geom::Metric::kL2;
      return true;
    }
    if (MatchKw("LINF") || MatchKw("LONE")) {
      *metric = geom::Metric::kLInf;
      return true;
    }
    return false;
  }

  Status ParseSimilarity(SimilarityClause* clause) {
    const bool all = MatchWords({"DISTANCE", "TO", "ALL"}) ||
                     MatchWords({"DISTANCE", "ALL"});
    const bool any = !all && (MatchWords({"DISTANCE", "TO", "ANY"}) ||
                              MatchWords({"DISTANCE", "ANY"}));
    if (all || any) {
      clause->kind = all ? SimilarityClause::Kind::kAll
                         : SimilarityClause::Kind::kAny;
      MatchMetric(&clause->metric);
      SGB_RETURN_IF_ERROR(ExpectKw("WITHIN"));
      auto eps = ParseNumber();
      if (!eps.ok()) return eps.status();
      clause->epsilon = eps.value();
      if (MatchKw("USING")) {
        if (!MatchMetric(&clause->metric)) {
          return Error("expected metric (L2|LINF|LTWO|LONE) after USING");
        }
      }
      if (all && MatchWords({"ON", "OVERLAP"})) {
        if (MatchWords({"JOIN", "ANY"})) {
          clause->on_overlap = core::OverlapClause::kJoinAny;
        } else if (MatchKw("ELIMINATE")) {
          clause->on_overlap = core::OverlapClause::kEliminate;
        } else if (MatchWords({"FORM", "NEW", "GROUP"}) ||
                   MatchWords({"FORM", "NEW"})) {
          clause->on_overlap = core::OverlapClause::kFormNewGroup;
        } else {
          return Error(
              "expected JOIN-ANY, ELIMINATE or FORM-NEW-GROUP after "
              "ON-OVERLAP");
        }
      }
      if (MatchKw("PARALLEL")) {
        auto dop = ParseNumber();
        if (!dop.ok()) return dop.status();
        const double v = dop.value();
        if (!(v >= 0.0) || v != std::floor(v) || v > 1024.0) {
          return Error(
              "PARALLEL expects an integer degree of parallelism in "
              "[0, 1024] (0 = auto)");
        }
        clause->dop = static_cast<int>(v);
      }
      return Status::OK();
    }

    if (MatchKw("MAXIMUM_ELEMENT_SEPARATION")) {
      clause->kind = SimilarityClause::Kind::kUnsupervised;
      auto sep = ParseNumber();
      if (!sep.ok()) return sep.status();
      clause->max_separation = sep.value();
      if (MatchKw("MAXIMUM_GROUP_DIAMETER")) {
        auto diameter = ParseNumber();
        if (!diameter.ok()) return diameter.status();
        clause->max_diameter = diameter.value();
      }
      return Status::OK();
    }

    if (MatchKw("AROUND")) {
      clause->kind = SimilarityClause::Kind::kAround;
      auto centers = ParseNumberList();
      if (!centers.ok()) return centers.status();
      clause->centers = std::move(centers).value();
      while (true) {
        if (MatchKw("MAXIMUM_ELEMENT_SEPARATION")) {
          auto sep = ParseNumber();
          if (!sep.ok()) return sep.status();
          clause->max_separation = sep.value();
        } else if (MatchKw("MAXIMUM_GROUP_DIAMETER")) {
          auto diameter = ParseNumber();
          if (!diameter.ok()) return diameter.status();
          clause->max_diameter = diameter.value();
        } else {
          break;
        }
      }
      return Status::OK();
    }

    if (MatchKw("DELIMITED")) {
      SGB_RETURN_IF_ERROR(ExpectKw("BY"));
      clause->kind = SimilarityClause::Kind::kDelimited;
      auto delims = ParseNumberList();
      if (!delims.ok()) return delims.status();
      clause->delimiters = std::move(delims).value();
      return Status::OK();
    }

    clause->kind = SimilarityClause::Kind::kNone;
    return Status::OK();
  }

  // ---- expressions (precedence climbing) --------------------------------

  Result<ParsedExprPtr> ParseExpr() { return ParseOr(); }

  Result<ParsedExprPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    ParsedExprPtr node = std::move(left).value();
    while (MatchKw("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right;
      node = MakeBinaryNode(BinaryOp::kOr, std::move(node),
                            std::move(right).value());
    }
    return node;
  }

  Result<ParsedExprPtr> ParseAnd() {
    auto left = ParseNot();
    if (!left.ok()) return left;
    ParsedExprPtr node = std::move(left).value();
    while (MatchKw("AND")) {
      auto right = ParseNot();
      if (!right.ok()) return right;
      node = MakeBinaryNode(BinaryOp::kAnd, std::move(node),
                            std::move(right).value());
    }
    return node;
  }

  Result<ParsedExprPtr> ParseNot() {
    if (MatchKw("NOT")) {
      auto operand = ParseNot();
      if (!operand.ok()) return operand;
      auto node = std::make_unique<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kNot;
      node->left = std::move(operand).value();
      return node;
    }
    return ParseComparison();
  }

  Result<ParsedExprPtr> ParseComparison() {
    auto left = ParseAddSub();
    if (!left.ok()) return left;
    ParsedExprPtr node = std::move(left).value();

    if (MatchKw("BETWEEN")) {
      auto lo = ParseAddSub();
      if (!lo.ok()) return lo;
      SGB_RETURN_IF_ERROR(ExpectKw("AND"));
      auto hi = ParseAddSub();
      if (!hi.ok()) return hi;
      // a BETWEEN lo AND hi  ==>  a >= lo AND a <= hi.
      ParsedExprPtr copy = CloneExpr(*node);
      ParsedExprPtr ge = MakeBinaryNode(BinaryOp::kGe, std::move(node),
                                        std::move(lo).value());
      ParsedExprPtr le = MakeBinaryNode(BinaryOp::kLe, std::move(copy),
                                        std::move(hi).value());
      return MakeBinaryNode(BinaryOp::kAnd, std::move(ge), std::move(le));
    }

    if (MatchKw("IN")) {
      SGB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after IN"));
      auto in = std::make_unique<ParsedExpr>();
      in->left = std::move(node);
      if (PeekKw("SELECT")) {
        auto sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        in->kind = ParsedExpr::Kind::kInSubquery;
        in->subquery = std::move(sub).value();
      } else {
        in->kind = ParsedExpr::Kind::kInList;
        do {
          auto item = ParseExpr();
          if (!item.ok()) return item;
          in->args.push_back(std::move(item).value());
        } while (Match(TokenType::kComma));
      }
      SGB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return in;
    }

    BinaryOp op;
    if (Match(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenType::kNe)) {
      op = BinaryOp::kNe;
    } else if (Match(TokenType::kLe)) {
      op = BinaryOp::kLe;
    } else if (Match(TokenType::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenType::kGe)) {
      op = BinaryOp::kGe;
    } else if (Match(TokenType::kGt)) {
      op = BinaryOp::kGt;
    } else {
      return node;
    }
    auto right = ParseAddSub();
    if (!right.ok()) return right;
    return MakeBinaryNode(op, std::move(node), std::move(right).value());
  }

  Result<ParsedExprPtr> ParseAddSub() {
    auto left = ParseMulDiv();
    if (!left.ok()) return left;
    ParsedExprPtr node = std::move(left).value();
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return node;
      }
      auto right = ParseMulDiv();
      if (!right.ok()) return right;
      node = MakeBinaryNode(op, std::move(node), std::move(right).value());
    }
  }

  Result<ParsedExprPtr> ParseMulDiv() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    ParsedExprPtr node = std::move(left).value();
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else {
        return node;
      }
      auto right = ParseUnary();
      if (!right.ok()) return right;
      node = MakeBinaryNode(op, std::move(node), std::move(right).value());
    }
  }

  Result<ParsedExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto node = std::make_unique<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kUnaryMinus;
      node->left = std::move(operand).value();
      return node;
    }
    Match(TokenType::kPlus);  // unary plus is a no-op
    return ParsePrimary();
  }

  Result<ParsedExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber) {
      auto node = std::make_unique<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLiteral;
      node->literal = t.is_integer
                          ? Value::Int(static_cast<int64_t>(t.number))
                          : Value::Double(t.number);
      Consume();
      return node;
    }
    if (t.type == TokenType::kString) {
      auto node = std::make_unique<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLiteral;
      node->literal = Value::Str(t.text);
      Consume();
      return node;
    }
    if (t.type == TokenType::kLParen) {
      Consume();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner;
      SGB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    if (t.type == TokenType::kIdent) {
      // DATE 'yyyy-mm-dd' literal: dates are ISO strings in this engine.
      if (EqualsCi(t.text, "DATE") && Peek(1).type == TokenType::kString) {
        Consume();
        auto node = std::make_unique<ParsedExpr>();
        node->kind = ParsedExpr::Kind::kLiteral;
        node->literal = Value::Str(Consume().text);
        return node;
      }
      const std::string first = Consume().text;
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdent) {
          return Error("expected column after '.'");
        }
        auto node = std::make_unique<ParsedExpr>();
        node->kind = ParsedExpr::Kind::kColumn;
        node->qualifier = first;
        node->name = Consume().text;
        return node;
      }
      if (Match(TokenType::kLParen)) {
        auto node = std::make_unique<ParsedExpr>();
        node->kind = ParsedExpr::Kind::kFunction;
        node->function_name = first;
        if (Match(TokenType::kStar)) {
          node->star_arg = true;
        } else if (Peek().type != TokenType::kRParen) {
          node->distinct_arg = MatchKw("DISTINCT");
          do {
            auto arg = ParseExpr();
            if (!arg.ok()) return arg;
            node->args.push_back(std::move(arg).value());
          } while (Match(TokenType::kComma));
        }
        SGB_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return node;
      }
      auto node = std::make_unique<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kColumn;
      node->name = first;
      return node;
    }
    return Error("expected an expression");
  }

  static ParsedExprPtr MakeBinaryNode(BinaryOp op, ParsedExprPtr left,
                                      ParsedExprPtr right) {
    auto node = std::make_unique<ParsedExpr>();
    node->kind = ParsedExpr::Kind::kBinary;
    node->op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    return node;
  }

  /// Structural deep copy (subqueries are not clonable and never appear in
  /// BETWEEN operands, the only caller).
  static ParsedExprPtr CloneExpr(const ParsedExpr& e) {
    auto node = std::make_unique<ParsedExpr>();
    node->kind = e.kind;
    node->qualifier = e.qualifier;
    node->name = e.name;
    node->literal = e.literal;
    node->op = e.op;
    node->function_name = e.function_name;
    node->star_arg = e.star_arg;
    if (e.left != nullptr) node->left = CloneExpr(*e.left);
    if (e.right != nullptr) node->right = CloneExpr(*e.right);
    for (const auto& arg : e.args) node->args.push_back(CloneExpr(*arg));
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

Result<ParsedStatement> ParseStatement(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseFullStatement();
}

}  // namespace sgb::sql
