#include "sql/ast.h"

namespace sgb::sql {

std::string ParsedExpr::ToText() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kLiteral:
      return literal.type() == engine::DataType::kString
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case Kind::kBinary:
      return "(" + left->ToText() + " " + engine::ToString(op) + " " +
             right->ToText() + ")";
    case Kind::kUnaryMinus:
      return "(-" + left->ToText() + ")";
    case Kind::kNot:
      return "(NOT " + left->ToText() + ")";
    case Kind::kFunction: {
      std::string out = function_name + "(";
      if (star_arg) {
        out += "*";
      } else {
        if (distinct_arg) out += "DISTINCT ";
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToText();
        }
      }
      return out + ")";
    }
    case Kind::kInList: {
      std::string out = left->ToText() + " IN (";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToText();
      }
      return out + ")";
    }
    case Kind::kInSubquery:
      return left->ToText() + " IN (<subquery>)";
  }
  return "?";
}

}  // namespace sgb::sql
