#include "sql/planner.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <utility>

#include "engine/append_table.h"
#include "engine/sgb_operator.h"
#include "stats/table_stats.h"
#include "storage/paged_table.h"

namespace sgb::sql {

namespace {

using engine::AggregateKind;
using engine::AggregateSpec;
using engine::BinaryOp;
using engine::Catalog;
using engine::Column;
using engine::DataType;
using engine::ExprPtr;
using engine::Operator;
using engine::OperatorPtr;
using engine::Row;
using engine::Schema;
using engine::Table;
using engine::Value;

/// Wraps a child plan, re-qualifying its schema (used for aliased FROM
/// subqueries so `alias.col` resolves).
class RenameOp final : public Operator {
 public:
  RenameOp(OperatorPtr child, const std::string& qualifier)
      : child_(std::move(child)),
        schema_(child_->schema().WithQualifier(qualifier)) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Rename"; }
  std::string label() const override {
    return schema_.size() > 0 ? "Rename as " + schema_.column(0).qualifier
                              : name();
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override { child_->Open(); }
  bool NextImpl(Row* out) override { return child_->Next(out); }

 private:
  OperatorPtr child_;
  Schema schema_;
};

bool IsAggregateCall(const ParsedExpr& e) {
  if (e.kind != ParsedExpr::Kind::kFunction) return false;
  if (e.star_arg) return true;  // count(*)
  return engine::AggregateKindFromName(e.function_name).ok();
}

/// Collects aggregate-call nodes in evaluation order (no nested aggregates:
/// search does not descend into an aggregate call).
void CollectAggregates(const ParsedExpr& e,
                       std::vector<const ParsedExpr*>* out) {
  if (IsAggregateCall(e)) {
    out->push_back(&e);
    return;
  }
  if (e.left != nullptr) CollectAggregates(*e.left, out);
  if (e.right != nullptr) CollectAggregates(*e.right, out);
  for (const auto& arg : e.args) CollectAggregates(*arg, out);
}

// ---- cost model constants -------------------------------------------------
//
// Abstract work factors for the SGB tiers, in units of "one distance
// computation" (~25ns on the reference machine). Only the ratios matter;
// they are fitted to the measured forced-tier matrix from
// bench/bench_planner.cc (docs/PLANNER.md, "Calibration").
/// SGB-All All-Pairs: per candidate pair, including overlap handling.
constexpr double kApPairCostAll = 1.0;
/// SGB-Any All-Pairs: per candidate pair; the union-find merge is far
/// cheaper than SGB-All's membership bookkeeping (~2ns/pair measured).
constexpr double kApPairCostAny = 0.04;
constexpr double kBcGroupCost = 0.12;  ///< Bounds-Checking: cheap bound test
constexpr double kRefineCost = 1.6;    ///< per ε-close pair refined
constexpr double kIxBuildCost = 40.0;  ///< per-point index maintenance
constexpr double kIxProbeCost = 2.0;   ///< per-point probe × log(groups)
/// Predicted work above which an unpinned SGB goes parallel (dop = 0).
constexpr double kParallelWorkThreshold = 8e6;
/// Plain GROUP BY: input rows below which sort aggregation never pays.
constexpr double kSortAggMinRows = 1024;
/// Fallback selectivities when statistics cannot price a predicate.
constexpr double kDefaultCompareSel = 1.0 / 3.0;
constexpr double kDefaultEqSel = 0.1;

std::string FormatApprox(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

const char* MetricWord(geom::Metric m) {
  return m == geom::Metric::kLInf ? "linf" : "l2";
}

class PlannerImpl {
 public:
  PlannerImpl(const Catalog& catalog, const PlannerOptions& options,
              PlanInfo* info)
      : catalog_(catalog), options_(options), info_(info) {}

  Result<OperatorPtr> PlanSelect(const SelectStatement& stmt) {
    // ---- FROM + WHERE ---------------------------------------------------
    if (stmt.from.empty()) {
      return Status::BindError("FROM clause is required");
    }
    std::vector<const ParsedExpr*> conjuncts;
    if (stmt.where != nullptr) SplitConjuncts(*stmt.where, &conjuncts);
    std::vector<bool> used(conjuncts.size(), false);

    std::vector<OperatorPtr> items;
    for (const TableRef& ref : stmt.from) {
      auto item = PlanFromItem(ref);
      if (!item.ok()) return item.status();
      items.push_back(std::move(item).value());
    }

    // Filter pushdown: a conjunct whose columns resolve against exactly one
    // FROM item filters that item's scan before any join. (Conjuncts that
    // bind against several items are left for join-key extraction or the
    // residual filter, preserving ambiguity errors.)
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      size_t bound_count = 0;
      size_t bound_item = 0;
      for (size_t i = 0; i < items.size(); ++i) {
        if (BindScalarNoError(*conjuncts[c], items[i]->schema()) != nullptr) {
          ++bound_count;
          bound_item = i;
        }
      }
      if (bound_count != 1) continue;
      auto bound = BindScalar(*conjuncts[c], items[bound_item]->schema());
      if (!bound.ok()) return bound.status();
      stats::TableStatsPtr ts = StatsFor(items[bound_item].get());
      const double in_rows = EstRows(*items[bound_item]);
      const double in_bytes = EstBytes(*items[bound_item]);
      double sel = -1.0;
      if (in_rows >= 0) {
        sel = ConjunctSelectivity(*conjuncts[c], ts.get(),
                                  items[bound_item]->schema());
      }
      items[bound_item] = engine::MakeFilter(std::move(items[bound_item]),
                                             std::move(bound).value());
      if (sel >= 0) {
        Annotate(items[bound_item].get(), in_rows * sel, in_bytes,
                 "sel=" + FormatApprox(sel));
        if (ts != nullptr) stats_by_op_[items[bound_item].get()] = ts;
      }
      used[c] = true;
    }

    OperatorPtr plan;
    for (OperatorPtr& item : items) {
      if (plan == nullptr) {
        plan = std::move(item);
        continue;
      }
      auto joined =
          JoinItem(std::move(plan), std::move(item), conjuncts, &used);
      if (!joined.ok()) return joined.status();
      plan = std::move(joined).value();
    }

    ExprPtr residual;
    double residual_sel = 1.0;
    {
      stats::TableStatsPtr ts = StatsFor(plan.get());
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (used[i]) continue;
        residual_sel *=
            ConjunctSelectivity(*conjuncts[i], ts.get(), plan->schema());
        auto bound = BindScalar(*conjuncts[i], plan->schema());
        if (!bound.ok()) return bound.status();
        residual = residual == nullptr
                       ? std::move(bound).value()
                       : engine::MakeBinary(BinaryOp::kAnd,
                                            std::move(residual),
                                            std::move(bound).value());
      }
    }
    if (residual != nullptr) {
      stats::TableStatsPtr ts = StatsFor(plan.get());
      const double in_rows = EstRows(*plan);
      const double in_bytes = EstBytes(*plan);
      plan = engine::MakeFilter(std::move(plan), std::move(residual));
      if (in_rows >= 0) {
        Annotate(plan.get(), in_rows * residual_sel, in_bytes,
                 "sel=" + FormatApprox(residual_sel));
        if (ts != nullptr) stats_by_op_[plan.get()] = ts;
      }
    }

    // ---- grouping / aggregation -----------------------------------------
    std::vector<const ParsedExpr*> agg_calls;
    for (const SelectItem& item : stmt.items) {
      CollectAggregates(*item.expr, &agg_calls);
    }
    if (stmt.having != nullptr) CollectAggregates(*stmt.having, &agg_calls);
    for (const OrderItem& item : stmt.order_by) {
      CollectAggregates(*item.expr, &agg_calls);
    }

    const bool has_grouping = !stmt.group_by.empty() || !agg_calls.empty();
    if (!has_grouping) {
      if (stmt.having != nullptr) {
        return Status::BindError("HAVING requires GROUP BY or aggregates");
      }
      return FinishScalarQuery(stmt, std::move(plan));
    }
    if (stmt.select_star) {
      return Status::BindError("SELECT * cannot be combined with GROUP BY");
    }
    return FinishGroupedQuery(stmt, std::move(plan), agg_calls);
  }

 private:
  // ---- FROM -------------------------------------------------------------

  Result<OperatorPtr> PlanFromItem(const TableRef& ref) {
    if (ref.subquery != nullptr) {
      auto sub = PlanSelect(*ref.subquery);
      if (!sub.ok()) return sub.status();
      OperatorPtr renamed =
          std::make_unique<RenameOp>(std::move(sub).value(), ref.alias);
      Inherit(renamed);
      return renamed;
    }
    const std::string qualifier =
        ref.alias.empty() ? ref.table_name : ref.alias;
    // Append-only and paged tables scan through a pinned snapshot instead
    // of a materialized copy, so readers never block (or copy) writers —
    // and a paged table streams pages through the buffer pool, so a table
    // larger than memory scans without materializing.
    OperatorPtr scan;
    if (auto appendable = catalog_.FindAppendable(ref.table_name)) {
      scan = engine::MakeAppendScan(std::move(appendable), qualifier);
    } else if (auto paged = catalog_.FindPaged(ref.table_name)) {
      scan = storage::MakePagedScan(std::move(paged), qualifier);
    } else {
      auto table = catalog_.Get(ref.table_name);
      if (!table.ok()) return table.status();
      scan = engine::MakeTableScan(std::move(table).value(), qualifier);
    }
    if (stats::TableStatsPtr ts = catalog_.GetStats(ref.table_name)) {
      const double rows = static_cast<double>(ts->row_count);
      Annotate(scan.get(), rows,
               rows * static_cast<double>(ts->avg_row_bytes), "analyzed");
      stats_by_op_[scan.get()] = ts;
      info_->used_stats = true;
    }
    return scan;
  }

  static void SplitConjuncts(const ParsedExpr& e,
                             std::vector<const ParsedExpr*>* out) {
    if (e.kind == ParsedExpr::Kind::kBinary && e.op == BinaryOp::kAnd) {
      SplitConjuncts(*e.left, out);
      SplitConjuncts(*e.right, out);
      return;
    }
    out->push_back(&e);
  }

  /// Joins `right` onto `left`, turning applicable equality conjuncts into
  /// hash-join keys; falls back to a cross product.
  Result<OperatorPtr> JoinItem(OperatorPtr left, OperatorPtr right,
                               const std::vector<const ParsedExpr*>& conjuncts,
                               std::vector<bool>* used) {
    const double left_rows = EstRows(*left);
    const double left_bytes = EstBytes(*left);
    const double right_rows = EstRows(*right);
    const double right_bytes = EstBytes(*right);
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if ((*used)[i]) continue;
      const ParsedExpr& e = *conjuncts[i];
      if (e.kind != ParsedExpr::Kind::kBinary || e.op != BinaryOp::kEq) {
        continue;
      }
      if (e.left->kind != ParsedExpr::Kind::kColumn ||
          e.right->kind != ParsedExpr::Kind::kColumn) {
        continue;
      }
      // Try left-side-in-left / right-side-in-right, then swapped.
      for (int swap = 0; swap < 2; ++swap) {
        const ParsedExpr& l = swap == 0 ? *e.left : *e.right;
        const ParsedExpr& r = swap == 0 ? *e.right : *e.left;
        auto lbound = BindScalar(l, left->schema());
        auto rbound = BindScalar(r, right->schema());
        if (lbound.ok() && rbound.ok()) {
          left_keys.push_back(std::move(lbound).value());
          right_keys.push_back(std::move(rbound).value());
          (*used)[i] = true;
          break;
        }
      }
    }
    if (!left_keys.empty()) {
      OperatorPtr join = engine::MakeHashJoin(std::move(left),
                                              std::move(right),
                                              std::move(left_keys),
                                              std::move(right_keys));
      if (left_rows >= 0 && right_rows >= 0) {
        // Equi-join on a key-ish column: output near the larger input; the
        // build side is held twice (rows + hash table).
        Annotate(join.get(), std::max(left_rows, right_rows),
                 std::max(0.0, left_bytes) + std::max(0.0, right_bytes) * 2);
      }
      return join;
    }
    OperatorPtr join = engine::MakeNestedLoopJoin(std::move(left),
                                                  std::move(right), nullptr);
    if (left_rows >= 0 && right_rows >= 0) {
      Annotate(join.get(), left_rows * right_rows,
               std::max(0.0, left_bytes) + std::max(0.0, right_bytes));
    }
    return join;
  }

  // ---- cost model ---------------------------------------------------------

  static void Annotate(Operator* op, double rows, double bytes,
                       std::string note = std::string()) {
    Operator::PlanEstimate est;
    est.rows = rows;
    est.bytes = bytes;
    est.note = std::move(note);
    op->set_plan_estimate(std::move(est));
  }

  static double EstRows(const Operator& op) {
    return op.plan_estimate().rows;
  }
  static double EstBytes(const Operator& op) {
    return op.plan_estimate().bytes;
  }

  stats::TableStatsPtr StatsFor(const Operator* op) const {
    const auto it = stats_by_op_.find(op);
    return it == stats_by_op_.end() ? nullptr : it->second;
  }

  /// Copies the first child's row/byte estimate onto a pass-through
  /// operator (Project, Rename, Sort).
  static void Inherit(const OperatorPtr& op) {
    const auto kids = op->children();
    if (kids.empty()) return;
    const Operator::PlanEstimate& child = kids[0]->plan_estimate();
    if (child.rows < 0 && child.bytes < 0) return;
    Annotate(op.get(), child.rows, child.bytes);
  }

  /// Maps a parsed column reference to its ANALYZE statistics. When the
  /// operator's schema still matches the base table column-for-column the
  /// resolved index is authoritative; otherwise fall back to name lookup.
  const stats::ColumnStats* ResolveColumnStats(const ParsedExpr& col,
                                               const stats::TableStats* ts,
                                               const Schema& schema) const {
    if (ts == nullptr || col.kind != ParsedExpr::Kind::kColumn) {
      return nullptr;
    }
    const Schema::Lookup lookup = schema.Find(col.qualifier, col.name);
    if (lookup.outcome == Schema::LookupOutcome::kFound &&
        schema.size() == ts->columns.size() &&
        lookup.index < ts->columns.size()) {
      return &ts->columns[lookup.index];
    }
    return ts->FindColumn(col.name);
  }

  double EqualitySelectivity(const ParsedExpr& col,
                             const stats::TableStats* ts,
                             const Schema& schema) const {
    const stats::ColumnStats* cs = ResolveColumnStats(col, ts, schema);
    if (cs == nullptr || cs->ndv == 0) return kDefaultEqSel;
    return 1.0 / static_cast<double>(cs->ndv);
  }

  /// Fraction of input rows a WHERE conjunct keeps. Statistics-driven for
  /// column-vs-literal predicates (1/ndv for equality, min/max range
  /// fraction for comparisons); textbook defaults otherwise.
  double ConjunctSelectivity(const ParsedExpr& e, const stats::TableStats* ts,
                             const Schema& schema) const {
    using Kind = ParsedExpr::Kind;
    if (e.kind == Kind::kNot && e.left != nullptr) {
      return std::clamp(1.0 - ConjunctSelectivity(*e.left, ts, schema),
                        0.001, 1.0);
    }
    if (e.kind == Kind::kInList && e.left != nullptr) {
      const double per = EqualitySelectivity(*e.left, ts, schema);
      return std::clamp(per * static_cast<double>(e.args.size()), 0.0, 1.0);
    }
    if (e.kind != Kind::kBinary) return kDefaultCompareSel;
    if (e.op == BinaryOp::kAnd) {
      return ConjunctSelectivity(*e.left, ts, schema) *
             ConjunctSelectivity(*e.right, ts, schema);
    }
    if (e.op == BinaryOp::kOr) {
      const double a = ConjunctSelectivity(*e.left, ts, schema);
      const double b = ConjunctSelectivity(*e.right, ts, schema);
      return std::clamp(a + b - a * b, 0.0, 1.0);
    }
    const ParsedExpr* col = nullptr;
    const ParsedExpr* lit = nullptr;
    bool flipped = false;
    if (e.left->kind == Kind::kColumn && e.right->kind == Kind::kLiteral) {
      col = e.left.get();
      lit = e.right.get();
    } else if (e.right->kind == Kind::kColumn &&
               e.left->kind == Kind::kLiteral) {
      col = e.right.get();
      lit = e.left.get();
      flipped = true;
    }
    switch (e.op) {
      case BinaryOp::kEq:
        return col != nullptr ? EqualitySelectivity(*col, ts, schema)
                              : kDefaultEqSel;
      case BinaryOp::kNe:
        return std::clamp(
            1.0 - (col != nullptr ? EqualitySelectivity(*col, ts, schema)
                                  : kDefaultEqSel),
            0.0, 1.0);
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        const stats::ColumnStats* cs =
            col != nullptr ? ResolveColumnStats(*col, ts, schema) : nullptr;
        if (cs == nullptr || !cs->has_range || lit == nullptr ||
            !lit->literal.IsNumeric() || cs->max <= cs->min) {
          return kDefaultCompareSel;
        }
        double frac =
            (lit->literal.ToDouble() - cs->min) / (cs->max - cs->min);
        frac = std::clamp(frac, 0.0, 1.0);
        bool keep_below = e.op == BinaryOp::kLt || e.op == BinaryOp::kLe;
        if (flipped) keep_below = !keep_below;  // 5 < x  ==  x > 5
        return std::clamp(keep_below ? frac : 1.0 - frac, 0.001, 1.0);
      }
      default:
        return kDefaultCompareSel;
    }
  }

  /// Narrows the similarity operator's input to the columns the GROUP BY
  /// and aggregate arguments actually touch. Only fires over a single
  /// analyzed table (StatsFor chain intact) where every reference resolves
  /// unambiguously; binding happens after, against the projected schema.
  OperatorPtr TryPushProjection(const SelectStatement& stmt,
                                const std::vector<const ParsedExpr*>& agg_calls,
                                OperatorPtr plan) {
    stats::TableStatsPtr ts = StatsFor(plan.get());
    if (ts == nullptr) return plan;
    const Schema& schema = plan->schema();
    std::vector<const ParsedExpr*> stack;
    for (const ParsedExprPtr& g : stmt.group_by) stack.push_back(g.get());
    for (const ParsedExpr* call : agg_calls) {
      for (const auto& arg : call->args) stack.push_back(arg.get());
    }
    std::set<size_t> needed;
    while (!stack.empty()) {
      const ParsedExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == ParsedExpr::Kind::kColumn) {
        const Schema::Lookup lookup = schema.Find(e->qualifier, e->name);
        if (lookup.outcome != Schema::LookupOutcome::kFound) return plan;
        needed.insert(lookup.index);
        continue;
      }
      if (e->kind == ParsedExpr::Kind::kInSubquery) return plan;
      if (e->left != nullptr) stack.push_back(e->left.get());
      if (e->right != nullptr) stack.push_back(e->right.get());
      for (const auto& arg : e->args) stack.push_back(arg.get());
    }
    if (needed.empty() || needed.size() >= schema.size()) return plan;
    std::vector<ExprPtr> exprs;
    std::vector<Column> columns;
    for (size_t idx : needed) {
      exprs.push_back(engine::MakeColumnRef(
          idx, "#" + std::to_string(idx) + "(" + schema.column(idx).name +
                   ")"));
      columns.push_back(schema.column(idx));
    }
    const double rows = EstRows(*plan);
    const double bytes = EstBytes(*plan);
    const double keep =
        static_cast<double>(columns.size()) / static_cast<double>(schema.size());
    OperatorPtr proj = engine::MakeProject(std::move(plan), std::move(exprs),
                                           std::move(columns));
    if (rows >= 0) {
      Annotate(proj.get(), rows, bytes >= 0 ? bytes * keep : bytes,
               "pushdown");
    }
    stats_by_op_[proj.get()] = ts;
    return proj;
  }

  // ---- scalar binding ---------------------------------------------------

  /// Binds `e` against `schema`, producing an executable expression.
  /// Column references become canonical "#<index>(<name>)" refs so two
  /// textually different spellings of the same column compare equal.
  Result<ExprPtr> BindScalar(const ParsedExpr& e, const Schema& schema) {
    switch (e.kind) {
      case ParsedExpr::Kind::kColumn: {
        const Schema::Lookup lookup = schema.Find(e.qualifier, e.name);
        if (lookup.outcome == Schema::LookupOutcome::kAmbiguous) {
          return Status::BindError("ambiguous column '" + e.ToText() + "'");
        }
        if (lookup.outcome == Schema::LookupOutcome::kNotFound) {
          return Status::BindError("unknown column '" + e.ToText() + "'");
        }
        return engine::MakeColumnRef(
            lookup.index,
            "#" + std::to_string(lookup.index) + "(" + e.name + ")");
      }
      case ParsedExpr::Kind::kLiteral:
        return engine::MakeLiteral(e.literal);
      case ParsedExpr::Kind::kBinary: {
        auto left = BindScalar(*e.left, schema);
        if (!left.ok()) return left;
        auto right = BindScalar(*e.right, schema);
        if (!right.ok()) return right;
        return engine::MakeBinary(e.op, std::move(left).value(),
                                  std::move(right).value());
      }
      case ParsedExpr::Kind::kUnaryMinus: {
        auto operand = BindScalar(*e.left, schema);
        if (!operand.ok()) return operand;
        return engine::MakeNegate(std::move(operand).value());
      }
      case ParsedExpr::Kind::kNot: {
        auto operand = BindScalar(*e.left, schema);
        if (!operand.ok()) return operand;
        return engine::MakeNot(std::move(operand).value());
      }
      case ParsedExpr::Kind::kFunction: {
        if (IsAggregateCall(e)) {
          return Status::BindError("aggregate '" + e.ToText() +
                                   "' is not allowed in this context");
        }
        auto fn = engine::ScalarFunctionFromName(e.function_name);
        if (!fn.ok()) {
          return Status::NotSupported("unknown function '" +
                                      e.function_name + "'");
        }
        if (e.args.size() != engine::ScalarFunctionArity(fn.value())) {
          return Status::BindError("wrong argument count for '" +
                                   e.ToText() + "'");
        }
        std::vector<ExprPtr> args;
        for (const auto& arg : e.args) {
          auto bound = BindScalar(*arg, schema);
          if (!bound.ok()) return bound;
          args.push_back(std::move(bound).value());
        }
        return engine::MakeScalarCall(fn.value(), std::move(args));
      }
      case ParsedExpr::Kind::kInList: {
        // p IN (a, b, ...)  ==>  p = a OR p = b OR ...
        ExprPtr chain;
        for (const auto& arg : e.args) {
          auto probe = BindScalar(*e.left, schema);
          if (!probe.ok()) return probe;
          auto item = BindScalar(*arg, schema);
          if (!item.ok()) return item;
          ExprPtr eq = engine::MakeBinary(BinaryOp::kEq,
                                          std::move(probe).value(),
                                          std::move(item).value());
          chain = chain == nullptr
                      ? std::move(eq)
                      : engine::MakeBinary(BinaryOp::kOr, std::move(chain),
                                           std::move(eq));
        }
        if (chain == nullptr) return engine::MakeLiteral(Value::Bool(false));
        return chain;
      }
      case ParsedExpr::Kind::kInSubquery: {
        auto probe = BindScalar(*e.left, schema);
        if (!probe.ok()) return probe;
        // Uncorrelated subquery: execute now, keep the first column.
        auto sub = PlanSelect(*e.subquery);
        if (!sub.ok()) return sub.status();
        auto table = engine::Materialize(*sub.value());
        if (!table.ok()) return table.status();
        if (table.value().schema().size() != 1) {
          return Status::BindError(
              "IN subquery must produce exactly one column");
        }
        auto set = std::make_shared<engine::ValueSet>();
        for (const Row& row : table.value().rows()) {
          if (!row[0].is_null()) set->insert(row[0]);
        }
        return engine::MakeInSet(std::move(probe).value(), std::move(set));
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  // ---- ungrouped SELECT -------------------------------------------------

  Result<OperatorPtr> FinishScalarQuery(const SelectStatement& stmt,
                                        OperatorPtr plan) {
    if (!stmt.select_star) {
      std::vector<ExprPtr> exprs;
      std::vector<Column> columns;
      for (const SelectItem& item : stmt.items) {
        auto bound = BindScalar(*item.expr, plan->schema());
        if (!bound.ok()) return bound.status();
        exprs.push_back(std::move(bound).value());
        columns.push_back(Column{
            item.alias.empty() ? item.expr->ToText() : item.alias,
            DataType::kNull, ""});
      }
      plan = engine::MakeProject(std::move(plan), std::move(exprs),
                                 std::move(columns));
      Inherit(plan);
    }
    return FinishOrderLimit(stmt, std::move(plan));
  }

  // ---- grouped SELECT ---------------------------------------------------

  Result<OperatorPtr> FinishGroupedQuery(
      const SelectStatement& stmt, OperatorPtr plan,
      const std::vector<const ParsedExpr*>& agg_calls) {
    if (stmt.similarity.kind != SimilarityClause::Kind::kNone) {
      plan = TryPushProjection(stmt, agg_calls, std::move(plan));
    }
    const Schema child_schema = plan->schema();

    // Bind group expressions and remember their canonical bound text for
    // select-list matching.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_texts;
    for (const ParsedExprPtr& g : stmt.group_by) {
      auto bound = BindScalar(*g, child_schema);
      if (!bound.ok()) return bound.status();
      group_texts.push_back(bound.value()->ToString());
      group_exprs.push_back(std::move(bound).value());
    }

    // Build aggregate specs.
    std::vector<AggregateSpec> specs;
    for (const ParsedExpr* call : agg_calls) {
      AggregateSpec spec;
      if (call->star_arg) {
        auto kind = engine::AggregateKindFromName(call->function_name);
        if (kind.ok() && kind.value() != AggregateKind::kCount) {
          return Status::BindError("'*' argument requires count(*)");
        }
        if (!EqualsCiCount(call->function_name)) {
          return Status::BindError("'*' argument requires count(*)");
        }
        spec.kind = AggregateKind::kCountStar;
      } else {
        auto kind = engine::AggregateKindFromName(call->function_name);
        if (!kind.ok()) return kind.status();
        spec.kind = kind.value();
        if (call->distinct_arg) {
          if (spec.kind != AggregateKind::kCount) {
            return Status::NotSupported(
                "DISTINCT is only supported inside count()");
          }
          spec.kind = AggregateKind::kCountDistinct;
        }
        if (call->args.size() != engine::AggregateArity(spec.kind)) {
          return Status::BindError("wrong argument count for '" +
                                   call->ToText() + "'");
        }
        for (const auto& arg : call->args) {
          auto bound = BindScalar(*arg, child_schema);
          if (!bound.ok()) return bound.status();
          spec.args.push_back(std::move(bound).value());
        }
      }
      spec.output_name = call->ToText();
      specs.push_back(std::move(spec));
    }

    // Route to the right physical aggregate.
    const SimilarityClause& sim = stmt.similarity;
    size_t agg_col_offset = 0;  // index of the first aggregate output column
    const bool similarity = sim.kind != SimilarityClause::Kind::kNone;
    if (similarity) {
      auto op = BuildSimilarityOperator(stmt, std::move(plan),
                                        std::move(group_exprs),
                                        std::move(specs));
      if (!op.ok()) return op.status();
      plan = std::move(op).value();
      agg_col_offset = 1;  // [group_id, aggs...]
      group_texts.clear();  // raw group columns are not in the output
    } else {
      std::vector<Column> group_columns;
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        const ParsedExpr& g = *stmt.group_by[i];
        const std::string name = g.kind == ParsedExpr::Kind::kColumn
                                     ? g.name
                                     : "group" + std::to_string(i);
        group_columns.push_back(Column{name, DataType::kNull, ""});
      }
      agg_col_offset = group_exprs.size();
      plan = BuildPlainAggregate(stmt, std::move(plan),
                                 std::move(group_exprs),
                                 std::move(group_columns), std::move(specs));
    }

    // Post-grouping contexts (SELECT list, HAVING, ORDER BY) are rebound
    // against the aggregate output.
    PostGroupContext ctx{child_schema, group_texts, agg_calls,
                         agg_col_offset, similarity, plan->schema()};

    if (stmt.having != nullptr) {
      const double in_rows = EstRows(*plan);
      const double in_bytes = EstBytes(*plan);
      auto bound = RebindPostGroup(*stmt.having, ctx);
      if (!bound.ok()) return bound.status();
      plan = engine::MakeFilter(std::move(plan), std::move(bound).value());
      if (in_rows >= 0) {
        Annotate(plan.get(), in_rows * kDefaultCompareSel, in_bytes,
                 "sel=" + FormatApprox(kDefaultCompareSel));
      }
    }

    std::vector<ExprPtr> exprs;
    std::vector<Column> columns;
    for (const SelectItem& item : stmt.items) {
      auto bound = RebindPostGroup(*item.expr, ctx);
      if (!bound.ok()) return bound.status();
      exprs.push_back(std::move(bound).value());
      columns.push_back(Column{
          item.alias.empty() ? item.expr->ToText() : item.alias,
          DataType::kNull, ""});
    }
    plan = engine::MakeProject(std::move(plan), std::move(exprs),
                               std::move(columns));
    Inherit(plan);
    return FinishOrderLimit(stmt, std::move(plan));
  }

  /// Plain GROUP BY: picks hash vs sort aggregation and seeds the hash
  /// table with the predicted group count. Calibration (docs/PLANNER.md)
  /// measured hash faster than sort up to 1M all-distinct keys on the
  /// reference machine, so auto treats sort purely as the bounded-memory
  /// strategy: it is chosen only when nearly every row opens a fresh group
  /// AND the predicted hash table would crowd the session memory budget.
  /// The sort aggregate cannot spill, so auto never picks it for
  /// spill-enabled statements.
  OperatorPtr BuildPlainAggregate(const SelectStatement& stmt,
                                  OperatorPtr plan,
                                  std::vector<ExprPtr> group_exprs,
                                  std::vector<Column> group_columns,
                                  std::vector<AggregateSpec> specs) {
    stats::TableStatsPtr ts = StatsFor(plan.get());
    const double in_rows = EstRows(*plan);
    const double in_bytes = EstBytes(*plan);
    size_t est_groups = 0;
    if (ts != nullptr && in_rows >= 0) {
      double g = 1.0;
      for (const ParsedExprPtr& gexpr : stmt.group_by) {
        double ndv = std::sqrt(std::max(0.0, in_rows));
        const stats::ColumnStats* cs =
            ResolveColumnStats(*gexpr, ts.get(), plan->schema());
        if (cs != nullptr && cs->ndv > 0) {
          ndv = static_cast<double>(cs->ndv);
        }
        g *= std::max(1.0, ndv);
      }
      est_groups = static_cast<size_t>(
          std::clamp(g, 1.0, std::max(1.0, in_rows)));
    }

    bool use_sort = false;
    std::string reason;
    switch (options_.agg_strategy) {
      case AggStrategy::kHash:
        reason = "agg_strategy=hash (forced)";
        break;
      case AggStrategy::kSort:
        use_sort = true;
        reason = "agg_strategy=sort (forced)";
        break;
      case AggStrategy::kAuto: {
        const double hash_bytes = static_cast<double>(est_groups) * 128.0;
        const bool budget_pressure =
            options_.memory_budget_bytes > 0 &&
            hash_bytes >
                0.5 * static_cast<double>(options_.memory_budget_bytes);
        if (est_groups > 0 && in_rows > kSortAggMinRows &&
            static_cast<double>(est_groups) > 0.5 * in_rows &&
            budget_pressure && !options_.spill_enabled) {
          use_sort = true;
          reason = "cost model: est " +
                   FormatApprox(static_cast<double>(est_groups)) +
                   " groups' hash table would crowd the " +
                   FormatApprox(
                       static_cast<double>(options_.memory_budget_bytes)) +
                   "-byte memory budget";
        } else if (est_groups > 0) {
          reason = "cost model: est " +
                   FormatApprox(static_cast<double>(est_groups)) +
                   " groups over " + FormatApprox(in_rows) + " rows";
        } else {
          reason = "no statistics: hash default";
        }
        break;
      }
    }
    if (info_->strategy.empty()) {
      info_->strategy = use_sort ? "sort" : "hash";
      if (info_->reason.empty()) info_->reason = reason;
    }

    OperatorPtr op =
        use_sort ? engine::MakeSortAggregate(std::move(plan),
                                             std::move(group_exprs),
                                             std::move(group_columns),
                                             std::move(specs))
                 : engine::MakeHashAggregate(std::move(plan),
                                             std::move(group_exprs),
                                             std::move(group_columns),
                                             std::move(specs), est_groups);
    if (est_groups > 0) {
      Annotate(op.get(), static_cast<double>(est_groups),
               std::max(0.0, in_bytes) +
                   static_cast<double>(est_groups) * 128.0,
               std::string("strategy=") + (use_sort ? "sort" : "hash"));
    } else {
      Annotate(op.get(), -1.0, -1.0,
               std::string("strategy=") + (use_sort ? "sort" : "hash"));
    }
    return op;
  }

  static bool EqualsCiCount(const std::string& name) {
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return lower == "count";
  }

  Result<OperatorPtr> BuildSimilarityOperator(
      const SelectStatement& stmt, OperatorPtr plan,
      std::vector<ExprPtr> group_exprs, std::vector<AggregateSpec> specs) {
    const SimilarityClause& sim = stmt.similarity;
    switch (sim.kind) {
      case SimilarityClause::Kind::kAll:
      case SimilarityClause::Kind::kAny: {
        if (group_exprs.size() != 2 && group_exprs.size() != 3) {
          return Status::BindError(
              "DISTANCE-TO-ALL/ANY requires two or three GROUP BY "
              "expressions");
        }
        if (!(sim.epsilon >= 0.0)) {
          return Status::BindError("WITHIN threshold must be >= 0");
        }
        // The query's PARALLEL clause wins over the session default.
        int dop = sim.dop.value_or(options_.default_sgb_dop);
        if (dop < 0) {
          return Status::BindError(
              "PARALLEL degree must be >= 0 (0 = auto)");
        }

        // ---- ε-selectivity estimates ----------------------------------
        stats::TableStatsPtr ts = StatsFor(plan.get());
        const double in_rows = EstRows(*plan);
        const double in_bytes = EstBytes(*plan);
        const bool is_all = sim.kind == SimilarityClause::Kind::kAll;
        const std::string metric = MetricWord(sim.metric);
        double n = -1.0;
        double pairs = -1.0;
        double groups = -1.0;
        double cost_ap = -1.0;
        double cost_bc = -1.0;
        double cost_ix = -1.0;
        if (ts != nullptr && ts->row_count > 0) {
          const double sel =
              in_rows >= 0
                  ? std::clamp(
                        in_rows / static_cast<double>(ts->row_count), 0.0,
                        1.0)
                  : 1.0;
          n = in_rows >= 0 ? in_rows : static_cast<double>(ts->row_count);
          pairs = ts->EstimateEpsilonPairs(sim.epsilon, metric, sel);
          groups = ts->EstimateEpsilonGroups(
              sim.epsilon, metric, sel,
              /*transitive=*/sim.kind == SimilarityClause::Kind::kAny);
          const double g = std::max(1.0, groups);
          const double p = std::max(0.0, pairs);
          cost_ap = (is_all ? kApPairCostAll : kApPairCostAny) * n * n;
          cost_bc = kBcGroupCost * n * g + kRefineCost * p;
          cost_ix = kIxBuildCost * n +
                    kIxProbeCost * n * std::log2(g + 2.0) +
                    kRefineCost * p;
        }

        // ---- tier selection -------------------------------------------
        enum Tier { kTierAllPairs, kTierBounds, kTierIndexed };
        Tier tier = kTierIndexed;
        std::string reason;
        switch (options_.sgb_tier) {
          case TierPolicy::kAllPairs:
            tier = kTierAllPairs;
            reason = "sgb_tier=all_pairs (forced)";
            break;
          case TierPolicy::kBounds:
            tier = is_all ? kTierBounds : kTierIndexed;
            reason = is_all ? "sgb_tier=bounds (forced)"
                            : "sgb_tier=bounds (forced; SGB-Any has no "
                              "bounds tier, using indexed)";
            break;
          case TierPolicy::kIndexed:
            tier = kTierIndexed;
            reason = "sgb_tier=indexed (forced)";
            break;
          case TierPolicy::kAuto: {
            if (n < 0) {
              reason = "no statistics: indexed default";
              break;
            }
            tier = kTierIndexed;
            double best = cost_ix;
            if (is_all && cost_bc < best) {
              tier = kTierBounds;
              best = cost_bc;
            }
            if (cost_ap < best) {
              tier = kTierAllPairs;
            }
            reason = "cost model: n=" + FormatApprox(n) +
                     " pairs=" + FormatApprox(std::max(0.0, pairs)) +
                     " groups=" + FormatApprox(std::max(1.0, groups)) +
                     " cost(ap)=" + FormatApprox(cost_ap) +
                     (is_all ? " cost(bc)=" + FormatApprox(cost_bc) : "") +
                     " cost(ix)=" + FormatApprox(cost_ix);
            break;
          }
        }
        const double work = tier == kTierAllPairs   ? cost_ap
                            : tier == kTierBounds   ? cost_bc
                                                    : cost_ix;

        // ---- dop selection --------------------------------------------
        // Only when neither the query (PARALLEL) nor the session
        // (SET parallel) pinned a degree; results are identical at any
        // dop, so this is purely a throughput decision.
        bool auto_dop = false;
        if (!sim.dop.has_value() && options_.default_sgb_dop == 1 &&
            work > kParallelWorkThreshold) {
          dop = 0;  // one worker per hardware thread
          auto_dop = true;
        }

        engine::SgbMode mode;
        if (is_all) {
          core::SgbAllOptions options;
          options.epsilon = sim.epsilon;
          options.metric = sim.metric;
          options.on_overlap = sim.on_overlap;
          options.degree_of_parallelism = dop;
          options.algorithm = tier == kTierAllPairs
                                  ? core::SgbAllAlgorithm::kAllPairs
                              : tier == kTierBounds
                                  ? core::SgbAllAlgorithm::kBoundsChecking
                                  : core::SgbAllAlgorithm::kIndexed;
          mode = options;
        } else {
          core::SgbAnyOptions options;
          options.epsilon = sim.epsilon;
          options.metric = sim.metric;
          options.degree_of_parallelism = dop;
          options.algorithm = tier == kTierAllPairs
                                  ? core::SgbAnyAlgorithm::kAllPairs
                                  : core::SgbAnyAlgorithm::kIndexed;
          mode = options;
        }
        OperatorPtr op;
        if (group_exprs.size() == 3) {
          op = engine::MakeSimilarityGroupBy3d(
              std::move(plan), std::move(group_exprs[0]),
              std::move(group_exprs[1]), std::move(group_exprs[2]),
              std::move(mode), std::move(specs));
        } else {
          op = engine::MakeSimilarityGroupBy(
              std::move(plan), std::move(group_exprs[0]),
              std::move(group_exprs[1]), std::move(mode), std::move(specs));
        }
        const char* tier_word = tier == kTierAllPairs ? "all-pairs"
                                : tier == kTierBounds ? "bounds"
                                                      : "indexed";
        if (n >= 0) {
          Annotate(op.get(), std::max(1.0, groups),
                   std::max(0.0, in_bytes) + n * 96.0,
                   std::string("tier=") + tier_word +
                       (auto_dop ? " dop=auto" : "") +
                       " est_pairs=" + FormatApprox(std::max(0.0, pairs)));
        } else {
          Annotate(op.get(), -1.0, -1.0, std::string("tier=") + tier_word);
        }
        info_->tier = tier_word;
        info_->reason = reason;
        info_->chosen_dop = dop;
        return op;
      }
      case SimilarityClause::Kind::kUnsupervised:
      case SimilarityClause::Kind::kAround:
      case SimilarityClause::Kind::kDelimited: {
        if (group_exprs.size() != 1) {
          return Status::BindError(
              "1-D similarity grouping requires exactly one GROUP BY "
              "expression");
        }
        engine::Sgb1dMode mode;
        if (sim.kind == SimilarityClause::Kind::kUnsupervised) {
          mode = engine::Sgb1dUnsupervised{sim.max_separation.value_or(0.0),
                                           sim.max_diameter};
        } else if (sim.kind == SimilarityClause::Kind::kAround) {
          mode = engine::Sgb1dAround{sim.centers, sim.max_separation,
                                     sim.max_diameter};
        } else {
          mode = engine::Sgb1dDelimited{sim.delimiters};
        }
        return engine::MakeSimilarityGroupBy1d(
            std::move(plan), std::move(group_exprs[0]), std::move(mode),
            std::move(specs));
      }
      case SimilarityClause::Kind::kNone:
        break;
    }
    return Status::Internal("unexpected similarity clause");
  }

  struct PostGroupContext {
    const Schema& child_schema;
    const std::vector<std::string>& group_texts;
    const std::vector<const ParsedExpr*>& agg_calls;
    size_t agg_col_offset;
    bool similarity;
    const Schema& output_schema;
  };

  /// Rebinds an expression over the aggregate output: aggregate calls map
  /// to their output columns, GROUP BY expressions map to group columns
  /// (plain GROUP BY only), `group_id` resolves for SGB outputs, and
  /// literals/operators recurse.
  Result<ExprPtr> RebindPostGroup(const ParsedExpr& e,
                                  const PostGroupContext& ctx) {
    if (IsAggregateCall(e)) {
      for (size_t i = 0; i < ctx.agg_calls.size(); ++i) {
        if (ctx.agg_calls[i] == &e ||
            ctx.agg_calls[i]->ToText() == e.ToText()) {
          const size_t index = ctx.agg_col_offset + i;
          return engine::MakeColumnRef(index,
                                       "#" + std::to_string(index) + "(" +
                                           e.ToText() + ")");
        }
      }
      return Status::Internal("aggregate call was not collected: " +
                              e.ToText());
    }

    // A whole sub-expression equal to a GROUP BY expression becomes a
    // reference to that group column.
    if (!ctx.group_texts.empty()) {
      auto bound = BindScalarNoError(e, ctx.child_schema);
      if (bound != nullptr) {
        const std::string text = bound->ToString();
        for (size_t g = 0; g < ctx.group_texts.size(); ++g) {
          if (ctx.group_texts[g] == text) {
            return engine::MakeColumnRef(g, "#" + std::to_string(g) + "(" +
                                                e.ToText() + ")");
          }
        }
      }
    }

    switch (e.kind) {
      case ParsedExpr::Kind::kLiteral:
        return engine::MakeLiteral(e.literal);
      case ParsedExpr::Kind::kColumn: {
        // `group_id` (or anything else the grouping operator exposes).
        const Schema::Lookup lookup =
            ctx.output_schema.Find(e.qualifier, e.name);
        if (lookup.outcome == Schema::LookupOutcome::kFound) {
          return engine::MakeColumnRef(lookup.index,
                                       "#" + std::to_string(lookup.index) +
                                           "(" + e.name + ")");
        }
        return Status::BindError(
            "column '" + e.ToText() +
            "' must appear in GROUP BY or inside an aggregate");
      }
      case ParsedExpr::Kind::kBinary: {
        auto left = RebindPostGroup(*e.left, ctx);
        if (!left.ok()) return left;
        auto right = RebindPostGroup(*e.right, ctx);
        if (!right.ok()) return right;
        return engine::MakeBinary(e.op, std::move(left).value(),
                                  std::move(right).value());
      }
      case ParsedExpr::Kind::kUnaryMinus: {
        auto operand = RebindPostGroup(*e.left, ctx);
        if (!operand.ok()) return operand;
        return engine::MakeNegate(std::move(operand).value());
      }
      case ParsedExpr::Kind::kNot: {
        auto operand = RebindPostGroup(*e.left, ctx);
        if (!operand.ok()) return operand;
        return engine::MakeNot(std::move(operand).value());
      }
      case ParsedExpr::Kind::kFunction: {
        // Non-aggregate function over aggregate results, e.g.
        // sqrt(sum(x)) in a HAVING clause.
        auto fn = engine::ScalarFunctionFromName(e.function_name);
        if (!fn.ok()) {
          return Status::NotSupported("unknown function '" +
                                      e.function_name + "'");
        }
        if (e.args.size() != engine::ScalarFunctionArity(fn.value())) {
          return Status::BindError("wrong argument count for '" +
                                   e.ToText() + "'");
        }
        std::vector<ExprPtr> args;
        for (const auto& arg : e.args) {
          auto bound = RebindPostGroup(*arg, ctx);
          if (!bound.ok()) return bound;
          args.push_back(std::move(bound).value());
        }
        return engine::MakeScalarCall(fn.value(), std::move(args));
      }
      default:
        return Status::NotSupported(
            "expression '" + e.ToText() +
            "' is not supported after GROUP BY");
    }
  }

  /// BindScalar without surfacing errors (used for structural matching).
  ExprPtr BindScalarNoError(const ParsedExpr& e, const Schema& schema) {
    auto bound = BindScalar(e, schema);
    if (!bound.ok()) return nullptr;
    return std::move(bound).value();
  }

  // ---- ORDER BY / LIMIT -------------------------------------------------

  Result<OperatorPtr> FinishOrderLimit(const SelectStatement& stmt,
                                       OperatorPtr plan) {
    if (!stmt.order_by.empty()) {
      std::vector<engine::SortKey> keys;
      for (const OrderItem& item : stmt.order_by) {
        engine::SortKey key;
        key.ascending = item.ascending;
        const ParsedExpr& e = *item.expr;
        if (e.kind == ParsedExpr::Kind::kLiteral &&
            e.literal.type() == DataType::kInt64) {
          const int64_t pos = e.literal.AsInt();
          if (pos < 1 || static_cast<size_t>(pos) > plan->schema().size()) {
            return Status::BindError("ORDER BY position out of range");
          }
          key.expr = engine::MakeColumnRef(static_cast<size_t>(pos - 1),
                                           "#" + std::to_string(pos - 1));
        } else {
          auto bound = BindScalar(e, plan->schema());
          if (!bound.ok()) {
            return Status::BindError(
                "ORDER BY must reference an output column (alias or "
                "position): " +
                bound.status().message());
          }
          key.expr = std::move(bound).value();
        }
        keys.push_back(std::move(key));
      }
      plan = engine::MakeSort(std::move(plan), std::move(keys));
      Inherit(plan);
    }
    if (stmt.limit.has_value()) {
      const double in_rows = EstRows(*plan);
      const double in_bytes = EstBytes(*plan);
      plan = engine::MakeLimit(std::move(plan), *stmt.limit);
      if (in_rows >= 0) {
        Annotate(plan.get(),
                 std::min(in_rows, static_cast<double>(*stmt.limit)),
                 in_bytes);
      }
    }
    return plan;
  }

  const Catalog& catalog_;
  const PlannerOptions options_;
  PlanInfo* const info_;
  /// Base-table statistics still visible at an operator's output: scans,
  /// then filters/projections over a single analyzed table. Joins and
  /// aggregates break the chain.
  std::unordered_map<const Operator*, stats::TableStatsPtr> stats_by_op_;
};

}  // namespace

Result<OperatorPtr> PlanQuery(const Catalog& catalog,
                              const SelectStatement& stmt) {
  return PlanQuery(catalog, stmt, PlannerOptions{});
}

Result<OperatorPtr> PlanQuery(const Catalog& catalog,
                              const SelectStatement& stmt,
                              const PlannerOptions& options) {
  return PlanQuery(catalog, stmt, options, nullptr);
}

Result<OperatorPtr> PlanQuery(const Catalog& catalog,
                              const SelectStatement& stmt,
                              const PlannerOptions& options, PlanInfo* info) {
  PlanInfo local;
  PlannerImpl planner(catalog, options, info != nullptr ? info : &local);
  auto plan = planner.PlanSelect(stmt);
  if (plan.ok() && info != nullptr) {
    const engine::Operator::PlanEstimate& est = plan.value()->plan_estimate();
    if (est.rows >= 0) info->est_rows = est.rows;
    if (est.bytes >= 0) info->est_bytes = est.bytes;
  }
  return plan;
}

const char* ToString(TierPolicy policy) {
  switch (policy) {
    case TierPolicy::kAuto:
      return "auto";
    case TierPolicy::kAllPairs:
      return "all_pairs";
    case TierPolicy::kBounds:
      return "bounds";
    case TierPolicy::kIndexed:
      return "indexed";
  }
  return "auto";
}

const char* ToString(AggStrategy strategy) {
  switch (strategy) {
    case AggStrategy::kAuto:
      return "auto";
    case AggStrategy::kHash:
      return "hash";
    case AggStrategy::kSort:
      return "sort";
  }
  return "auto";
}

}  // namespace sgb::sql
