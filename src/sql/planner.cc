#include "sql/planner.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <utility>

#include "engine/append_table.h"
#include "engine/sgb_operator.h"

namespace sgb::sql {

namespace {

using engine::AggregateKind;
using engine::AggregateSpec;
using engine::BinaryOp;
using engine::Catalog;
using engine::Column;
using engine::DataType;
using engine::ExprPtr;
using engine::Operator;
using engine::OperatorPtr;
using engine::Row;
using engine::Schema;
using engine::Table;
using engine::Value;

/// Wraps a child plan, re-qualifying its schema (used for aliased FROM
/// subqueries so `alias.col` resolves).
class RenameOp final : public Operator {
 public:
  RenameOp(OperatorPtr child, const std::string& qualifier)
      : child_(std::move(child)),
        schema_(child_->schema().WithQualifier(qualifier)) {}
  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Rename"; }
  std::string label() const override {
    return schema_.size() > 0 ? "Rename as " + schema_.column(0).qualifier
                              : name();
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  void OpenImpl() override { child_->Open(); }
  bool NextImpl(Row* out) override { return child_->Next(out); }

 private:
  OperatorPtr child_;
  Schema schema_;
};

bool IsAggregateCall(const ParsedExpr& e) {
  if (e.kind != ParsedExpr::Kind::kFunction) return false;
  if (e.star_arg) return true;  // count(*)
  return engine::AggregateKindFromName(e.function_name).ok();
}

/// Collects aggregate-call nodes in evaluation order (no nested aggregates:
/// search does not descend into an aggregate call).
void CollectAggregates(const ParsedExpr& e,
                       std::vector<const ParsedExpr*>* out) {
  if (IsAggregateCall(e)) {
    out->push_back(&e);
    return;
  }
  if (e.left != nullptr) CollectAggregates(*e.left, out);
  if (e.right != nullptr) CollectAggregates(*e.right, out);
  for (const auto& arg : e.args) CollectAggregates(*arg, out);
}

class PlannerImpl {
 public:
  PlannerImpl(const Catalog& catalog, const PlannerOptions& options)
      : catalog_(catalog), options_(options) {}

  Result<OperatorPtr> PlanSelect(const SelectStatement& stmt) {
    // ---- FROM + WHERE ---------------------------------------------------
    if (stmt.from.empty()) {
      return Status::BindError("FROM clause is required");
    }
    std::vector<const ParsedExpr*> conjuncts;
    if (stmt.where != nullptr) SplitConjuncts(*stmt.where, &conjuncts);
    std::vector<bool> used(conjuncts.size(), false);

    std::vector<OperatorPtr> items;
    for (const TableRef& ref : stmt.from) {
      auto item = PlanFromItem(ref);
      if (!item.ok()) return item.status();
      items.push_back(std::move(item).value());
    }

    // Filter pushdown: a conjunct whose columns resolve against exactly one
    // FROM item filters that item's scan before any join. (Conjuncts that
    // bind against several items are left for join-key extraction or the
    // residual filter, preserving ambiguity errors.)
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      size_t bound_count = 0;
      size_t bound_item = 0;
      for (size_t i = 0; i < items.size(); ++i) {
        if (BindScalarNoError(*conjuncts[c], items[i]->schema()) != nullptr) {
          ++bound_count;
          bound_item = i;
        }
      }
      if (bound_count != 1) continue;
      auto bound = BindScalar(*conjuncts[c], items[bound_item]->schema());
      if (!bound.ok()) return bound.status();
      items[bound_item] = engine::MakeFilter(std::move(items[bound_item]),
                                             std::move(bound).value());
      used[c] = true;
    }

    OperatorPtr plan;
    for (OperatorPtr& item : items) {
      if (plan == nullptr) {
        plan = std::move(item);
        continue;
      }
      auto joined =
          JoinItem(std::move(plan), std::move(item), conjuncts, &used);
      if (!joined.ok()) return joined.status();
      plan = std::move(joined).value();
    }

    ExprPtr residual;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i]) continue;
      auto bound = BindScalar(*conjuncts[i], plan->schema());
      if (!bound.ok()) return bound.status();
      residual = residual == nullptr
                     ? std::move(bound).value()
                     : engine::MakeBinary(BinaryOp::kAnd, std::move(residual),
                                          std::move(bound).value());
    }
    if (residual != nullptr) {
      plan = engine::MakeFilter(std::move(plan), std::move(residual));
    }

    // ---- grouping / aggregation -----------------------------------------
    std::vector<const ParsedExpr*> agg_calls;
    for (const SelectItem& item : stmt.items) {
      CollectAggregates(*item.expr, &agg_calls);
    }
    if (stmt.having != nullptr) CollectAggregates(*stmt.having, &agg_calls);
    for (const OrderItem& item : stmt.order_by) {
      CollectAggregates(*item.expr, &agg_calls);
    }

    const bool has_grouping = !stmt.group_by.empty() || !agg_calls.empty();
    if (!has_grouping) {
      if (stmt.having != nullptr) {
        return Status::BindError("HAVING requires GROUP BY or aggregates");
      }
      return FinishScalarQuery(stmt, std::move(plan));
    }
    if (stmt.select_star) {
      return Status::BindError("SELECT * cannot be combined with GROUP BY");
    }
    return FinishGroupedQuery(stmt, std::move(plan), agg_calls);
  }

 private:
  // ---- FROM -------------------------------------------------------------

  Result<OperatorPtr> PlanFromItem(const TableRef& ref) {
    if (ref.subquery != nullptr) {
      auto sub = PlanSelect(*ref.subquery);
      if (!sub.ok()) return sub.status();
      return OperatorPtr(
          std::make_unique<RenameOp>(std::move(sub).value(), ref.alias));
    }
    const std::string qualifier =
        ref.alias.empty() ? ref.table_name : ref.alias;
    // Append-only tables scan through a pinned snapshot instead of a
    // materialized copy, so readers never block (or copy) writers.
    if (auto appendable = catalog_.FindAppendable(ref.table_name)) {
      return engine::MakeAppendScan(std::move(appendable), qualifier);
    }
    auto table = catalog_.Get(ref.table_name);
    if (!table.ok()) return table.status();
    return engine::MakeTableScan(std::move(table).value(), qualifier);
  }

  static void SplitConjuncts(const ParsedExpr& e,
                             std::vector<const ParsedExpr*>* out) {
    if (e.kind == ParsedExpr::Kind::kBinary && e.op == BinaryOp::kAnd) {
      SplitConjuncts(*e.left, out);
      SplitConjuncts(*e.right, out);
      return;
    }
    out->push_back(&e);
  }

  /// Joins `right` onto `left`, turning applicable equality conjuncts into
  /// hash-join keys; falls back to a cross product.
  Result<OperatorPtr> JoinItem(OperatorPtr left, OperatorPtr right,
                               const std::vector<const ParsedExpr*>& conjuncts,
                               std::vector<bool>* used) {
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if ((*used)[i]) continue;
      const ParsedExpr& e = *conjuncts[i];
      if (e.kind != ParsedExpr::Kind::kBinary || e.op != BinaryOp::kEq) {
        continue;
      }
      if (e.left->kind != ParsedExpr::Kind::kColumn ||
          e.right->kind != ParsedExpr::Kind::kColumn) {
        continue;
      }
      // Try left-side-in-left / right-side-in-right, then swapped.
      for (int swap = 0; swap < 2; ++swap) {
        const ParsedExpr& l = swap == 0 ? *e.left : *e.right;
        const ParsedExpr& r = swap == 0 ? *e.right : *e.left;
        auto lbound = BindScalar(l, left->schema());
        auto rbound = BindScalar(r, right->schema());
        if (lbound.ok() && rbound.ok()) {
          left_keys.push_back(std::move(lbound).value());
          right_keys.push_back(std::move(rbound).value());
          (*used)[i] = true;
          break;
        }
      }
    }
    if (!left_keys.empty()) {
      return engine::MakeHashJoin(std::move(left), std::move(right),
                                  std::move(left_keys),
                                  std::move(right_keys));
    }
    return engine::MakeNestedLoopJoin(std::move(left), std::move(right),
                                      nullptr);
  }

  // ---- scalar binding ---------------------------------------------------

  /// Binds `e` against `schema`, producing an executable expression.
  /// Column references become canonical "#<index>(<name>)" refs so two
  /// textually different spellings of the same column compare equal.
  Result<ExprPtr> BindScalar(const ParsedExpr& e, const Schema& schema) {
    switch (e.kind) {
      case ParsedExpr::Kind::kColumn: {
        const Schema::Lookup lookup = schema.Find(e.qualifier, e.name);
        if (lookup.outcome == Schema::LookupOutcome::kAmbiguous) {
          return Status::BindError("ambiguous column '" + e.ToText() + "'");
        }
        if (lookup.outcome == Schema::LookupOutcome::kNotFound) {
          return Status::BindError("unknown column '" + e.ToText() + "'");
        }
        return engine::MakeColumnRef(
            lookup.index,
            "#" + std::to_string(lookup.index) + "(" + e.name + ")");
      }
      case ParsedExpr::Kind::kLiteral:
        return engine::MakeLiteral(e.literal);
      case ParsedExpr::Kind::kBinary: {
        auto left = BindScalar(*e.left, schema);
        if (!left.ok()) return left;
        auto right = BindScalar(*e.right, schema);
        if (!right.ok()) return right;
        return engine::MakeBinary(e.op, std::move(left).value(),
                                  std::move(right).value());
      }
      case ParsedExpr::Kind::kUnaryMinus: {
        auto operand = BindScalar(*e.left, schema);
        if (!operand.ok()) return operand;
        return engine::MakeNegate(std::move(operand).value());
      }
      case ParsedExpr::Kind::kNot: {
        auto operand = BindScalar(*e.left, schema);
        if (!operand.ok()) return operand;
        return engine::MakeNot(std::move(operand).value());
      }
      case ParsedExpr::Kind::kFunction: {
        if (IsAggregateCall(e)) {
          return Status::BindError("aggregate '" + e.ToText() +
                                   "' is not allowed in this context");
        }
        auto fn = engine::ScalarFunctionFromName(e.function_name);
        if (!fn.ok()) {
          return Status::NotSupported("unknown function '" +
                                      e.function_name + "'");
        }
        if (e.args.size() != engine::ScalarFunctionArity(fn.value())) {
          return Status::BindError("wrong argument count for '" +
                                   e.ToText() + "'");
        }
        std::vector<ExprPtr> args;
        for (const auto& arg : e.args) {
          auto bound = BindScalar(*arg, schema);
          if (!bound.ok()) return bound;
          args.push_back(std::move(bound).value());
        }
        return engine::MakeScalarCall(fn.value(), std::move(args));
      }
      case ParsedExpr::Kind::kInList: {
        // p IN (a, b, ...)  ==>  p = a OR p = b OR ...
        ExprPtr chain;
        for (const auto& arg : e.args) {
          auto probe = BindScalar(*e.left, schema);
          if (!probe.ok()) return probe;
          auto item = BindScalar(*arg, schema);
          if (!item.ok()) return item;
          ExprPtr eq = engine::MakeBinary(BinaryOp::kEq,
                                          std::move(probe).value(),
                                          std::move(item).value());
          chain = chain == nullptr
                      ? std::move(eq)
                      : engine::MakeBinary(BinaryOp::kOr, std::move(chain),
                                           std::move(eq));
        }
        if (chain == nullptr) return engine::MakeLiteral(Value::Bool(false));
        return chain;
      }
      case ParsedExpr::Kind::kInSubquery: {
        auto probe = BindScalar(*e.left, schema);
        if (!probe.ok()) return probe;
        // Uncorrelated subquery: execute now, keep the first column.
        auto sub = PlanSelect(*e.subquery);
        if (!sub.ok()) return sub.status();
        auto table = engine::Materialize(*sub.value());
        if (!table.ok()) return table.status();
        if (table.value().schema().size() != 1) {
          return Status::BindError(
              "IN subquery must produce exactly one column");
        }
        auto set = std::make_shared<engine::ValueSet>();
        for (const Row& row : table.value().rows()) {
          if (!row[0].is_null()) set->insert(row[0]);
        }
        return engine::MakeInSet(std::move(probe).value(), std::move(set));
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  // ---- ungrouped SELECT -------------------------------------------------

  Result<OperatorPtr> FinishScalarQuery(const SelectStatement& stmt,
                                        OperatorPtr plan) {
    if (!stmt.select_star) {
      std::vector<ExprPtr> exprs;
      std::vector<Column> columns;
      for (const SelectItem& item : stmt.items) {
        auto bound = BindScalar(*item.expr, plan->schema());
        if (!bound.ok()) return bound.status();
        exprs.push_back(std::move(bound).value());
        columns.push_back(Column{
            item.alias.empty() ? item.expr->ToText() : item.alias,
            DataType::kNull, ""});
      }
      plan = engine::MakeProject(std::move(plan), std::move(exprs),
                                 std::move(columns));
    }
    return FinishOrderLimit(stmt, std::move(plan));
  }

  // ---- grouped SELECT ---------------------------------------------------

  Result<OperatorPtr> FinishGroupedQuery(
      const SelectStatement& stmt, OperatorPtr plan,
      const std::vector<const ParsedExpr*>& agg_calls) {
    const Schema child_schema = plan->schema();

    // Bind group expressions and remember their canonical bound text for
    // select-list matching.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_texts;
    for (const ParsedExprPtr& g : stmt.group_by) {
      auto bound = BindScalar(*g, child_schema);
      if (!bound.ok()) return bound.status();
      group_texts.push_back(bound.value()->ToString());
      group_exprs.push_back(std::move(bound).value());
    }

    // Build aggregate specs.
    std::vector<AggregateSpec> specs;
    for (const ParsedExpr* call : agg_calls) {
      AggregateSpec spec;
      if (call->star_arg) {
        auto kind = engine::AggregateKindFromName(call->function_name);
        if (kind.ok() && kind.value() != AggregateKind::kCount) {
          return Status::BindError("'*' argument requires count(*)");
        }
        if (!EqualsCiCount(call->function_name)) {
          return Status::BindError("'*' argument requires count(*)");
        }
        spec.kind = AggregateKind::kCountStar;
      } else {
        auto kind = engine::AggregateKindFromName(call->function_name);
        if (!kind.ok()) return kind.status();
        spec.kind = kind.value();
        if (call->distinct_arg) {
          if (spec.kind != AggregateKind::kCount) {
            return Status::NotSupported(
                "DISTINCT is only supported inside count()");
          }
          spec.kind = AggregateKind::kCountDistinct;
        }
        if (call->args.size() != engine::AggregateArity(spec.kind)) {
          return Status::BindError("wrong argument count for '" +
                                   call->ToText() + "'");
        }
        for (const auto& arg : call->args) {
          auto bound = BindScalar(*arg, child_schema);
          if (!bound.ok()) return bound.status();
          spec.args.push_back(std::move(bound).value());
        }
      }
      spec.output_name = call->ToText();
      specs.push_back(std::move(spec));
    }

    // Route to the right physical aggregate.
    const SimilarityClause& sim = stmt.similarity;
    size_t agg_col_offset = 0;  // index of the first aggregate output column
    const bool similarity = sim.kind != SimilarityClause::Kind::kNone;
    if (similarity) {
      auto op = BuildSimilarityOperator(stmt, std::move(plan),
                                        std::move(group_exprs),
                                        std::move(specs));
      if (!op.ok()) return op.status();
      plan = std::move(op).value();
      agg_col_offset = 1;  // [group_id, aggs...]
      group_texts.clear();  // raw group columns are not in the output
    } else {
      std::vector<Column> group_columns;
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        const ParsedExpr& g = *stmt.group_by[i];
        const std::string name = g.kind == ParsedExpr::Kind::kColumn
                                     ? g.name
                                     : "group" + std::to_string(i);
        group_columns.push_back(Column{name, DataType::kNull, ""});
      }
      agg_col_offset = group_exprs.size();
      plan = engine::MakeHashAggregate(std::move(plan),
                                       std::move(group_exprs),
                                       std::move(group_columns),
                                       std::move(specs));
    }

    // Post-grouping contexts (SELECT list, HAVING, ORDER BY) are rebound
    // against the aggregate output.
    PostGroupContext ctx{child_schema, group_texts, agg_calls,
                         agg_col_offset, similarity, plan->schema()};

    if (stmt.having != nullptr) {
      auto bound = RebindPostGroup(*stmt.having, ctx);
      if (!bound.ok()) return bound.status();
      plan = engine::MakeFilter(std::move(plan), std::move(bound).value());
    }

    std::vector<ExprPtr> exprs;
    std::vector<Column> columns;
    for (const SelectItem& item : stmt.items) {
      auto bound = RebindPostGroup(*item.expr, ctx);
      if (!bound.ok()) return bound.status();
      exprs.push_back(std::move(bound).value());
      columns.push_back(Column{
          item.alias.empty() ? item.expr->ToText() : item.alias,
          DataType::kNull, ""});
    }
    plan = engine::MakeProject(std::move(plan), std::move(exprs),
                               std::move(columns));
    return FinishOrderLimit(stmt, std::move(plan));
  }

  static bool EqualsCiCount(const std::string& name) {
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return lower == "count";
  }

  Result<OperatorPtr> BuildSimilarityOperator(
      const SelectStatement& stmt, OperatorPtr plan,
      std::vector<ExprPtr> group_exprs, std::vector<AggregateSpec> specs) {
    const SimilarityClause& sim = stmt.similarity;
    switch (sim.kind) {
      case SimilarityClause::Kind::kAll:
      case SimilarityClause::Kind::kAny: {
        if (group_exprs.size() != 2 && group_exprs.size() != 3) {
          return Status::BindError(
              "DISTANCE-TO-ALL/ANY requires two or three GROUP BY "
              "expressions");
        }
        // The query's PARALLEL clause wins over the session default.
        const int dop = sim.dop.value_or(options_.default_sgb_dop);
        if (dop < 0) {
          return Status::BindError(
              "PARALLEL degree must be >= 0 (0 = auto)");
        }
        engine::SgbMode mode;
        if (sim.kind == SimilarityClause::Kind::kAll) {
          core::SgbAllOptions options;
          options.epsilon = sim.epsilon;
          options.metric = sim.metric;
          options.on_overlap = sim.on_overlap;
          options.degree_of_parallelism = dop;
          mode = options;
        } else {
          core::SgbAnyOptions options;
          options.epsilon = sim.epsilon;
          options.metric = sim.metric;
          options.degree_of_parallelism = dop;
          mode = options;
        }
        if (!(sim.epsilon >= 0.0)) {
          return Status::BindError("WITHIN threshold must be >= 0");
        }
        if (group_exprs.size() == 3) {
          return engine::MakeSimilarityGroupBy3d(
              std::move(plan), std::move(group_exprs[0]),
              std::move(group_exprs[1]), std::move(group_exprs[2]),
              std::move(mode), std::move(specs));
        }
        return engine::MakeSimilarityGroupBy(
            std::move(plan), std::move(group_exprs[0]),
            std::move(group_exprs[1]), std::move(mode), std::move(specs));
      }
      case SimilarityClause::Kind::kUnsupervised:
      case SimilarityClause::Kind::kAround:
      case SimilarityClause::Kind::kDelimited: {
        if (group_exprs.size() != 1) {
          return Status::BindError(
              "1-D similarity grouping requires exactly one GROUP BY "
              "expression");
        }
        engine::Sgb1dMode mode;
        if (sim.kind == SimilarityClause::Kind::kUnsupervised) {
          mode = engine::Sgb1dUnsupervised{sim.max_separation.value_or(0.0),
                                           sim.max_diameter};
        } else if (sim.kind == SimilarityClause::Kind::kAround) {
          mode = engine::Sgb1dAround{sim.centers, sim.max_separation,
                                     sim.max_diameter};
        } else {
          mode = engine::Sgb1dDelimited{sim.delimiters};
        }
        return engine::MakeSimilarityGroupBy1d(
            std::move(plan), std::move(group_exprs[0]), std::move(mode),
            std::move(specs));
      }
      case SimilarityClause::Kind::kNone:
        break;
    }
    return Status::Internal("unexpected similarity clause");
  }

  struct PostGroupContext {
    const Schema& child_schema;
    const std::vector<std::string>& group_texts;
    const std::vector<const ParsedExpr*>& agg_calls;
    size_t agg_col_offset;
    bool similarity;
    const Schema& output_schema;
  };

  /// Rebinds an expression over the aggregate output: aggregate calls map
  /// to their output columns, GROUP BY expressions map to group columns
  /// (plain GROUP BY only), `group_id` resolves for SGB outputs, and
  /// literals/operators recurse.
  Result<ExprPtr> RebindPostGroup(const ParsedExpr& e,
                                  const PostGroupContext& ctx) {
    if (IsAggregateCall(e)) {
      for (size_t i = 0; i < ctx.agg_calls.size(); ++i) {
        if (ctx.agg_calls[i] == &e ||
            ctx.agg_calls[i]->ToText() == e.ToText()) {
          const size_t index = ctx.agg_col_offset + i;
          return engine::MakeColumnRef(index,
                                       "#" + std::to_string(index) + "(" +
                                           e.ToText() + ")");
        }
      }
      return Status::Internal("aggregate call was not collected: " +
                              e.ToText());
    }

    // A whole sub-expression equal to a GROUP BY expression becomes a
    // reference to that group column.
    if (!ctx.group_texts.empty()) {
      auto bound = BindScalarNoError(e, ctx.child_schema);
      if (bound != nullptr) {
        const std::string text = bound->ToString();
        for (size_t g = 0; g < ctx.group_texts.size(); ++g) {
          if (ctx.group_texts[g] == text) {
            return engine::MakeColumnRef(g, "#" + std::to_string(g) + "(" +
                                                e.ToText() + ")");
          }
        }
      }
    }

    switch (e.kind) {
      case ParsedExpr::Kind::kLiteral:
        return engine::MakeLiteral(e.literal);
      case ParsedExpr::Kind::kColumn: {
        // `group_id` (or anything else the grouping operator exposes).
        const Schema::Lookup lookup =
            ctx.output_schema.Find(e.qualifier, e.name);
        if (lookup.outcome == Schema::LookupOutcome::kFound) {
          return engine::MakeColumnRef(lookup.index,
                                       "#" + std::to_string(lookup.index) +
                                           "(" + e.name + ")");
        }
        return Status::BindError(
            "column '" + e.ToText() +
            "' must appear in GROUP BY or inside an aggregate");
      }
      case ParsedExpr::Kind::kBinary: {
        auto left = RebindPostGroup(*e.left, ctx);
        if (!left.ok()) return left;
        auto right = RebindPostGroup(*e.right, ctx);
        if (!right.ok()) return right;
        return engine::MakeBinary(e.op, std::move(left).value(),
                                  std::move(right).value());
      }
      case ParsedExpr::Kind::kUnaryMinus: {
        auto operand = RebindPostGroup(*e.left, ctx);
        if (!operand.ok()) return operand;
        return engine::MakeNegate(std::move(operand).value());
      }
      case ParsedExpr::Kind::kNot: {
        auto operand = RebindPostGroup(*e.left, ctx);
        if (!operand.ok()) return operand;
        return engine::MakeNot(std::move(operand).value());
      }
      case ParsedExpr::Kind::kFunction: {
        // Non-aggregate function over aggregate results, e.g.
        // sqrt(sum(x)) in a HAVING clause.
        auto fn = engine::ScalarFunctionFromName(e.function_name);
        if (!fn.ok()) {
          return Status::NotSupported("unknown function '" +
                                      e.function_name + "'");
        }
        if (e.args.size() != engine::ScalarFunctionArity(fn.value())) {
          return Status::BindError("wrong argument count for '" +
                                   e.ToText() + "'");
        }
        std::vector<ExprPtr> args;
        for (const auto& arg : e.args) {
          auto bound = RebindPostGroup(*arg, ctx);
          if (!bound.ok()) return bound;
          args.push_back(std::move(bound).value());
        }
        return engine::MakeScalarCall(fn.value(), std::move(args));
      }
      default:
        return Status::NotSupported(
            "expression '" + e.ToText() +
            "' is not supported after GROUP BY");
    }
  }

  /// BindScalar without surfacing errors (used for structural matching).
  ExprPtr BindScalarNoError(const ParsedExpr& e, const Schema& schema) {
    auto bound = BindScalar(e, schema);
    if (!bound.ok()) return nullptr;
    return std::move(bound).value();
  }

  // ---- ORDER BY / LIMIT -------------------------------------------------

  Result<OperatorPtr> FinishOrderLimit(const SelectStatement& stmt,
                                       OperatorPtr plan) {
    if (!stmt.order_by.empty()) {
      std::vector<engine::SortKey> keys;
      for (const OrderItem& item : stmt.order_by) {
        engine::SortKey key;
        key.ascending = item.ascending;
        const ParsedExpr& e = *item.expr;
        if (e.kind == ParsedExpr::Kind::kLiteral &&
            e.literal.type() == DataType::kInt64) {
          const int64_t pos = e.literal.AsInt();
          if (pos < 1 || static_cast<size_t>(pos) > plan->schema().size()) {
            return Status::BindError("ORDER BY position out of range");
          }
          key.expr = engine::MakeColumnRef(static_cast<size_t>(pos - 1),
                                           "#" + std::to_string(pos - 1));
        } else {
          auto bound = BindScalar(e, plan->schema());
          if (!bound.ok()) {
            return Status::BindError(
                "ORDER BY must reference an output column (alias or "
                "position): " +
                bound.status().message());
          }
          key.expr = std::move(bound).value();
        }
        keys.push_back(std::move(key));
      }
      plan = engine::MakeSort(std::move(plan), std::move(keys));
    }
    if (stmt.limit.has_value()) {
      plan = engine::MakeLimit(std::move(plan), *stmt.limit);
    }
    return plan;
  }

  const Catalog& catalog_;
  const PlannerOptions options_;
};

}  // namespace

Result<OperatorPtr> PlanQuery(const Catalog& catalog,
                              const SelectStatement& stmt) {
  return PlanQuery(catalog, stmt, PlannerOptions{});
}

Result<OperatorPtr> PlanQuery(const Catalog& catalog,
                              const SelectStatement& stmt,
                              const PlannerOptions& options) {
  PlannerImpl planner(catalog, options);
  return planner.PlanSelect(stmt);
}

}  // namespace sgb::sql
