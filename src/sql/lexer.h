#ifndef SGB_SQL_LEXER_H_
#define SGB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sgb::sql {

enum class TokenType {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // raw identifier / string body
  double number = 0.0;  // for kNumber
  bool is_integer = false;
  size_t position = 0;  // byte offset into the SQL text, for diagnostics
};

/// Tokenizes `sql`. Identifiers keep their original spelling (keyword
/// matching is case-insensitive and happens in the parser); string literals
/// use single quotes with '' as the escape; numbers are ints or decimals
/// with optional exponent. `--` line comments are skipped.
///
/// Errors: ParseError with the byte offset of the offending character.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sgb::sql

#endif  // SGB_SQL_LEXER_H_
