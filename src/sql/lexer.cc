#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sgb::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&tokens](TokenType type, size_t pos, std::string text = "") {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentBody(sql[j])) ++j;
      push(TokenType::kIdent, start, sql.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_integer = true;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_integer = false;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_integer = false;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
            ++j;
          }
        }
      }
      Token t;
      t.type = TokenType::kNumber;
      t.text = sql.substr(i, j - i);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.is_integer = is_integer;
      t.position = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string body;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            body += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        body += sql[j++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kString, start, std::move(body));
      i = j;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, start);
        ++i;
        continue;
      case ')':
        push(TokenType::kRParen, start);
        ++i;
        continue;
      case ',':
        push(TokenType::kComma, start);
        ++i;
        continue;
      case '.':
        push(TokenType::kDot, start);
        ++i;
        continue;
      case '*':
        push(TokenType::kStar, start);
        ++i;
        continue;
      case '+':
        push(TokenType::kPlus, start);
        ++i;
        continue;
      case '-':
        push(TokenType::kMinus, start);
        ++i;
        continue;
      case '/':
        push(TokenType::kSlash, start);
        ++i;
        continue;
      case ';':
        push(TokenType::kSemicolon, start);
        ++i;
        continue;
      case '=':
        push(TokenType::kEq, start);
        ++i;
        continue;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
          continue;
        }
        [[fallthrough]];
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenType::kEnd, n);
  return tokens;
}

}  // namespace sgb::sql
