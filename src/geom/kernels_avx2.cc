// AVX2 variants of the block kernels. This TU is compiled with -mavx2 only
// when -DSGB_ENABLE_AVX2=ON; the dispatcher in kernels.cc selects these at
// runtime iff the CPU reports AVX2 support. FMA is deliberately not used:
// the exactness contract requires the same mul/add/compare sequence as the
// scalar predicate, with no contraction (docs/VECTORIZATION.md).

#include "geom/kernels.h"

#if defined(SGB_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <cmath>

namespace sgb::geom {

namespace {

/// Runs the 4-wide body over the full quads of the block, then finishes the
/// remainder with the per-element scalar tail. 4 divides 64, so a quad's
/// four bits never straddle a mask word.
template <typename QuadFn, typename TailFn>
size_t BlockLoop(size_t n, uint64_t* mask, QuadFn&& quad, TailFn&& tail) {
  for (size_t w = 0; w < KernelMaskWords(n); ++w) mask[w] = 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t bits = quad(i);  // low 4 bits = lanes i..i+3
    mask[i / 64] |= bits << (i % 64);
    count += static_cast<size_t>(std::popcount(bits));
  }
  for (; i < n; ++i) {
    if (tail(i)) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
      ++count;
    }
  }
  return count;
}

}  // namespace

size_t SimilarBlockL2Avx2(double qx, double qy, const double* xs,
                          const double* ys, size_t n, double eps_sq,
                          uint64_t* mask) {
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  const __m256d veps = _mm256_set1_pd(eps_sq);
  return BlockLoop(
      n, mask,
      [&](size_t i) -> uint64_t {
        const __m256d dx = _mm256_sub_pd(vqx, _mm256_loadu_pd(xs + i));
        const __m256d dy = _mm256_sub_pd(vqy, _mm256_loadu_pd(ys + i));
        const __m256d d2 =
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
        return static_cast<uint64_t>(
            _mm256_movemask_pd(_mm256_cmp_pd(d2, veps, _CMP_LE_OQ)));
      },
      [&](size_t i) {
        const double dx = qx - xs[i];
        const double dy = qy - ys[i];
        return dx * dx + dy * dy <= eps_sq;
      });
}

size_t SimilarBlockLInfAvx2(double qx, double qy, const double* xs,
                            const double* ys, size_t n, double eps,
                            uint64_t* mask) {
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d sign = _mm256_set1_pd(-0.0);
  return BlockLoop(
      n, mask,
      [&](size_t i) -> uint64_t {
        const __m256d dx = _mm256_andnot_pd(
            sign, _mm256_sub_pd(vqx, _mm256_loadu_pd(xs + i)));
        const __m256d dy = _mm256_andnot_pd(
            sign, _mm256_sub_pd(vqy, _mm256_loadu_pd(ys + i)));
        // fmax(dx, dy) <= eps with fmax's NaN semantics: each operand must
        // be not-greater-than eps (unordered compares count NaN as "not
        // greater"), minus the lanes where both are NaN.
        const __m256d dx_ok = _mm256_cmp_pd(dx, veps, _CMP_NGT_UQ);
        const __m256d dy_ok = _mm256_cmp_pd(dy, veps, _CMP_NGT_UQ);
        const __m256d both_nan =
            _mm256_and_pd(_mm256_cmp_pd(dx, dx, _CMP_UNORD_Q),
                          _mm256_cmp_pd(dy, dy, _CMP_UNORD_Q));
        const __m256d ok =
            _mm256_andnot_pd(both_nan, _mm256_and_pd(dx_ok, dy_ok));
        return static_cast<uint64_t>(_mm256_movemask_pd(ok));
      },
      [&](size_t i) {
        const double dx = std::fabs(qx - xs[i]);
        const double dy = std::fabs(qy - ys[i]);
        return std::fmax(dx, dy) <= eps;
      });
}

size_t RectFilterBlockAvx2(const Rect& rect, const double* xs,
                           const double* ys, size_t n, uint64_t* mask) {
  const __m256d lox = _mm256_set1_pd(rect.lo.x);
  const __m256d hix = _mm256_set1_pd(rect.hi.x);
  const __m256d loy = _mm256_set1_pd(rect.lo.y);
  const __m256d hiy = _mm256_set1_pd(rect.hi.y);
  return BlockLoop(
      n, mask,
      [&](size_t i) -> uint64_t {
        const __m256d x = _mm256_loadu_pd(xs + i);
        const __m256d y = _mm256_loadu_pd(ys + i);
        const __m256d ok = _mm256_and_pd(
            _mm256_and_pd(_mm256_cmp_pd(x, lox, _CMP_GE_OQ),
                          _mm256_cmp_pd(x, hix, _CMP_LE_OQ)),
            _mm256_and_pd(_mm256_cmp_pd(y, loy, _CMP_GE_OQ),
                          _mm256_cmp_pd(y, hiy, _CMP_LE_OQ)));
        return static_cast<uint64_t>(_mm256_movemask_pd(ok));
      },
      [&](size_t i) { return rect.Contains(Point{xs[i], ys[i]}); });
}

}  // namespace sgb::geom

#endif  // SGB_HAVE_AVX2
