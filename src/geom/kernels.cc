#include "geom/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace sgb::geom {

namespace {

/// Zeroes the mask words for an n-point block.
inline void ClearMask(uint64_t* mask, size_t n) {
  std::fill(mask, mask + KernelMaskWords(n), uint64_t{0});
}

/// Packs 8 comparison lanes (words holding 0 or 1) into 8 mask bits.
inline uint64_t PackCompareLanes(const uint64_t* ok) {
  uint64_t bits = 0;
  for (size_t k = 0; k < 8; ++k) bits |= ok[k] << k;
  return bits;
}

/// The L∞ predicate fmax(dx, dy) <= eps rewritten branch-free. With both
/// operands non-NaN this is dx <= eps && dy <= eps; std::fmax additionally
/// returns the non-NaN operand when exactly one is NaN, which the
/// !(v > eps) form (true for NaN) combined with the both-NaN rejection
/// reproduces exactly. Differential tests cover every NaN/±inf case.
inline bool LInfWithin(double dx, double dy, double eps) {
  return !(dx > eps) & !(dy > eps) & !((dx != dx) & (dy != dy));
}

}  // namespace

// ---- Scalar reference variants ------------------------------------------

size_t SimilarBlockL2Scalar(double qx, double qy, const double* xs,
                            const double* ys, size_t n, double eps_sq,
                            uint64_t* mask) {
  ClearMask(mask, n);
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = qx - xs[i];
    const double dy = qy - ys[i];
    if (dx * dx + dy * dy <= eps_sq) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
      ++count;
    }
  }
  return count;
}

size_t SimilarBlockLInfScalar(double qx, double qy, const double* xs,
                              const double* ys, size_t n, double eps,
                              uint64_t* mask) {
  ClearMask(mask, n);
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = std::fabs(qx - xs[i]);
    const double dy = std::fabs(qy - ys[i]);
    if (std::fmax(dx, dy) <= eps) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
      ++count;
    }
  }
  return count;
}

size_t RectFilterBlockScalar(const Rect& rect, const double* xs,
                             const double* ys, size_t n, uint64_t* mask) {
  ClearMask(mask, n);
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rect.Contains(Point{xs[i], ys[i]})) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
      ++count;
    }
  }
  return count;
}

// ---- Portable auto-vectorizing variants ---------------------------------
//
// Shape shared by all three: process 8 points per step into a uint64_t lane
// array of 0/1 compare results (a branch-free loop the auto-vectorizer turns
// into packed compares — same-width integer lanes matter: GCC's vectorizer
// declines the double-compare-to-byte store pattern), shift-or the lanes
// into mask bits, and finish the sub-8 remainder with the scalar reference
// so block-boundary behaviour is identical by construction. 8 never
// straddles a mask word.

size_t SimilarBlockL2Portable(double qx, double qy, const double* xs,
                              const double* ys, size_t n, double eps_sq,
                              uint64_t* mask) {
  ClearMask(mask, n);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t ok[8];
    for (size_t k = 0; k < 8; ++k) {
      const double dx = qx - xs[i + k];
      const double dy = qy - ys[i + k];
      ok[k] = dx * dx + dy * dy <= eps_sq ? uint64_t{1} : uint64_t{0};
    }
    const uint64_t bits = PackCompareLanes(ok);
    mask[i / 64] |= bits << (i % 64);
    count += static_cast<size_t>(std::popcount(bits));
  }
  for (; i < n; ++i) {
    const double dx = qx - xs[i];
    const double dy = qy - ys[i];
    if (dx * dx + dy * dy <= eps_sq) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
      ++count;
    }
  }
  return count;
}

size_t SimilarBlockLInfPortable(double qx, double qy, const double* xs,
                                const double* ys, size_t n, double eps,
                                uint64_t* mask) {
  ClearMask(mask, n);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t ok[8];
    for (size_t k = 0; k < 8; ++k) {
      const double dx = std::fabs(qx - xs[i + k]);
      const double dy = std::fabs(qy - ys[i + k]);
      ok[k] = LInfWithin(dx, dy, eps) ? uint64_t{1} : uint64_t{0};
    }
    const uint64_t bits = PackCompareLanes(ok);
    mask[i / 64] |= bits << (i % 64);
    count += static_cast<size_t>(std::popcount(bits));
  }
  for (; i < n; ++i) {
    const double dx = std::fabs(qx - xs[i]);
    const double dy = std::fabs(qy - ys[i]);
    if (std::fmax(dx, dy) <= eps) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
      ++count;
    }
  }
  return count;
}

size_t RectFilterBlockPortable(const Rect& rect, const double* xs,
                               const double* ys, size_t n, uint64_t* mask) {
  ClearMask(mask, n);
  const double lox = rect.lo.x, hix = rect.hi.x;
  const double loy = rect.lo.y, hiy = rect.hi.y;
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t ok[8];
    for (size_t k = 0; k < 8; ++k) {
      const double x = xs[i + k];
      const double y = ys[i + k];
      ok[k] = ((x >= lox) & (x <= hix) & (y >= loy) & (y <= hiy))
                  ? uint64_t{1}
                  : uint64_t{0};
    }
    const uint64_t bits = PackCompareLanes(ok);
    mask[i / 64] |= bits << (i % 64);
    count += static_cast<size_t>(std::popcount(bits));
  }
  for (; i < n; ++i) {
    if (rect.Contains(Point{xs[i], ys[i]})) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
      ++count;
    }
  }
  return count;
}

// ---- Runtime dispatch ---------------------------------------------------

namespace {

using SimilarBlockFn = size_t (*)(double, double, const double*,
                                  const double*, size_t, double, uint64_t*);
using RectFilterFn = size_t (*)(const Rect&, const double*, const double*,
                                size_t, uint64_t*);

struct KernelTable {
  SimilarBlockFn l2 = &SimilarBlockL2Portable;
  SimilarBlockFn linf = &SimilarBlockLInfPortable;
  RectFilterFn rect = &RectFilterBlockPortable;
  const char* name = "portable";
};

#if defined(SGB_HAVE_AVX2)
bool Avx2Supported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}
#endif

KernelTable ResolveKernels() {
  KernelTable scalar{&SimilarBlockL2Scalar, &SimilarBlockLInfScalar,
                     &RectFilterBlockScalar, "scalar"};
  KernelTable portable{};
  KernelTable best = portable;
#if defined(SGB_HAVE_AVX2)
  if (Avx2Supported()) {
    best = KernelTable{&SimilarBlockL2Avx2, &SimilarBlockLInfAvx2,
                       &RectFilterBlockAvx2, "avx2"};
  }
#endif
  const char* env = std::getenv("SGB_KERNEL_VARIANT");
  if (env != nullptr) {
    const std::string want(env);
    if (want == "scalar") return scalar;
    if (want == "portable") return portable;
    // "avx2" (or anything else) falls through to the best available, so a
    // pinned variant never silently executes unsupported instructions.
  }
  return best;
}

const KernelTable& Kernels() {
  static const KernelTable table = ResolveKernels();
  return table;
}

/// Registry counter pair, resolved once; Counter objects live for the
/// registry's lifetime so the references stay valid across Reset().
struct KernelCounters {
  obs::Counter& invocations;
  obs::Counter& pairs;
};

KernelCounters& Counters() {
  static KernelCounters counters{
      obs::MetricsRegistry::Global().GetCounter("sgb.kernel.invocations"),
      obs::MetricsRegistry::Global().GetCounter("sgb.kernel.pairs")};
  return counters;
}

inline void CountKernelCall(size_t n) {
  KernelCounters& c = Counters();
  c.invocations.Add(1);
  c.pairs.Add(n);
}

}  // namespace

size_t SimilarBlockL2(double qx, double qy, const double* xs,
                      const double* ys, size_t n, double eps_sq,
                      uint64_t* mask) {
  CountKernelCall(n);
  return Kernels().l2(qx, qy, xs, ys, n, eps_sq, mask);
}

size_t SimilarBlockLInf(double qx, double qy, const double* xs,
                        const double* ys, size_t n, double eps,
                        uint64_t* mask) {
  CountKernelCall(n);
  return Kernels().linf(qx, qy, xs, ys, n, eps, mask);
}

size_t RectFilterBlock(const Rect& rect, const double* xs, const double* ys,
                       size_t n, uint64_t* mask) {
  CountKernelCall(n);
  return Kernels().rect(rect, xs, ys, n, mask);
}

const char* ActiveKernelVariant() { return Kernels().name; }

}  // namespace sgb::geom
