#include "geom/convex_hull.h"

#include <algorithm>

namespace sgb::geom {

namespace {

/// Cross product (b - a) x (c - a): > 0 for a counter-clockwise turn.
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool LexLess(const Point& a, const Point& b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

}  // namespace

std::vector<Point> ConvexHull(std::span<const Point> points) {
  std::vector<Point> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end(), LexLess);
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const size_t n = pts.size();
  if (n <= 2) return pts;

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  // Upper hull.
  const size_t lower_size = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && Cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

bool PointInConvexHull(const Point& p, std::span<const Point> hull) {
  // Tolerance keeps exact boundary points "inside"; it must never admit a
  // clearly exterior point, since callers use this as a positive membership
  // shortcut.
  constexpr double kTol = 1e-12;
  const size_t h = hull.size();
  if (h == 0) return false;
  if (h == 1) return DistanceL2Squared(p, hull[0]) <= kTol;
  if (h == 2) {
    // Degenerate hull: the segment hull[0]..hull[1].
    if (std::fabs(Cross(hull[0], hull[1], p)) > kTol) return false;
    const double dot = (p.x - hull[0].x) * (hull[1].x - hull[0].x) +
                       (p.y - hull[0].y) * (hull[1].y - hull[0].y);
    const double len2 = DistanceL2Squared(hull[0], hull[1]);
    return dot >= -kTol && dot <= len2 + kTol;
  }
  for (size_t i = 0; i < h; ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % h];
    if (Cross(a, b, p) < -kTol) return false;
  }
  return true;
}

size_t FarthestHullVertex(const Point& p, std::span<const Point> hull) {
  size_t best = 0;
  double best_d2 = DistanceL2Squared(p, hull[0]);
  for (size_t i = 1; i < hull.size(); ++i) {
    const double d2 = DistanceL2Squared(p, hull[i]);
    if (d2 > best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

void IncrementalHull::Insert(const Point& p) {
  // The new hull is a subset of {old hull vertices} ∪ {p}: a point interior
  // to the old hull stays interior after adding p.
  hull_.push_back(p);
  // Re-hull even at size 2 so duplicate points collapse; a degenerate
  // two-identical-point "segment" would break PointInConvexHull.
  if (hull_.size() >= 2) hull_ = ConvexHull(hull_);
}

void IncrementalHull::Rebuild(std::span<const Point> members) {
  hull_ = ConvexHull(members);
}

bool IncrementalHull::WithinEpsilonOfAll(const Point& p,
                                         double epsilon) const {
  if (hull_.empty()) return true;
  // Shortcut (a): interior points of a valid SGB-All group's hull are
  // within ε of every member (Section 6.4). Precondition: the maintained
  // point set is a valid group (all pairs within ε under L2).
  if (PointInConvexHull(p, hull_)) return true;
  // Exact test (b): the farthest member from p is a hull vertex.
  const size_t far = FarthestHullVertex(p, hull_);
  return DistanceL2Squared(p, hull_[far]) <= epsilon * epsilon;
}

}  // namespace sgb::geom
