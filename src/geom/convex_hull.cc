#include "geom/convex_hull.h"

#include <algorithm>

namespace sgb::geom {

namespace {

/// Cross product (b - a) x (c - a): > 0 for a counter-clockwise turn.
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool LexLess(const Point& a, const Point& b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

}  // namespace

std::vector<Point> ConvexHull(std::span<const Point> points) {
  std::vector<Point> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end(), LexLess);
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const size_t n = pts.size();
  if (n <= 2) return pts;

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  // Upper hull.
  const size_t lower_size = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && Cross(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

bool PointInConvexHull(const Point& p, std::span<const Point> hull) {
  // Tolerance keeps exact boundary points "inside"; it must never admit a
  // clearly exterior point, since callers use this as a positive membership
  // shortcut.
  constexpr double kTol = 1e-12;
  const size_t h = hull.size();
  if (h == 0) return false;
  if (h == 1) return DistanceL2Squared(p, hull[0]) <= kTol;
  if (h == 2) {
    // Degenerate hull: the segment hull[0]..hull[1].
    if (std::fabs(Cross(hull[0], hull[1], p)) > kTol) return false;
    const double dot = (p.x - hull[0].x) * (hull[1].x - hull[0].x) +
                       (p.y - hull[0].y) * (hull[1].y - hull[0].y);
    const double len2 = DistanceL2Squared(hull[0], hull[1]);
    return dot >= -kTol && dot <= len2 + kTol;
  }
  for (size_t i = 0; i < h; ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % h];
    if (Cross(a, b, p) < -kTol) return false;
  }
  return true;
}

size_t FarthestHullVertex(const Point& p, std::span<const Point> hull) {
  size_t best = 0;
  double best_d2 = DistanceL2Squared(p, hull[0]);
  for (size_t i = 1; i < hull.size(); ++i) {
    const double d2 = DistanceL2Squared(p, hull[i]);
    if (d2 > best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

void IncrementalHull::Insert(const Point& p) {
  // The new hull is a subset of {old hull vertices} ∪ {p}: a point interior
  // to the old hull stays interior after adding p.
  hull_.push_back(p);
  // Re-hull even at size 2 so duplicate points collapse; a degenerate
  // two-identical-point "segment" would break PointInConvexHull.
  if (hull_.size() >= 2) hull_ = ConvexHull(hull_);
}

void IncrementalHull::Rebuild(std::span<const Point> members) {
  hull_ = ConvexHull(members);
}

bool IncrementalHull::WithinEpsilonOfAll(const Point& p,
                                         double epsilon) const {
  // Exact: the farthest member from p is a hull vertex (every member
  // dropped during hulling lies in the vertices' convex hull), so p is
  // within ε of all members iff it is within ε of all vertices. This
  // subsumes the Section 6.4 interior-point shortcut — for a valid group
  // (all member pairs within ε) an interior p has d(p, v) ≤ max_m d(m, v)
  // ≤ ε for every vertex v — and unlike an edge-walk interior test it
  // stays sound when floating-point noise on near-collinear members
  // degrades the hull to a sliver, whose "interior" under a tolerance is
  // the entire line through it.
  const double eps2 = epsilon * epsilon;
  for (const Point& v : hull_) {
    if (DistanceL2Squared(p, v) > eps2) return false;
  }
  return true;
}

}  // namespace sgb::geom
