#include "geom/epsilon_rect.h"

// EpsilonRect is header-only; this TU anchors the target.
