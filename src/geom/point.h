#ifndef SGB_GEOM_POINT_H_
#define SGB_GEOM_POINT_H_

#include <cmath>
#include <cstdint>

namespace sgb::geom {

/// A point in the 2-D grouping-attribute space. The paper (Section 3)
/// studies the two-attribute case, viewing each tuple's grouping attributes
/// as a point p:(x1, x2); we follow that convention throughout the core.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Metric distance functions supported by the similarity predicate
/// (Definition 1): Minkowski L2 (Euclidean) and L-infinity (maximum).
enum class Metric {
  kL2,
  kLInf,
};

/// Euclidean distance δ2(a, b) = sqrt((ax-bx)^2 + (ay-by)^2).
inline double DistanceL2(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance — avoids the sqrt in comparisons.
inline double DistanceL2Squared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Maximum (Chebyshev) distance δ∞(a, b) = max(|ax-bx|, |ay-by|).
inline double DistanceLInf(const Point& a, const Point& b) {
  return std::fmax(std::fabs(a.x - b.x), std::fabs(a.y - b.y));
}

inline double Distance(const Point& a, const Point& b, Metric metric) {
  return metric == Metric::kL2 ? DistanceL2(a, b) : DistanceLInf(a, b);
}

/// The similarity predicate ξδ,ε (Definition 2): true iff δ(a, b) <= ε.
/// For L2 the comparison is done on squared distances.
inline bool Similar(const Point& a, const Point& b, Metric metric,
                    double epsilon) {
  if (metric == Metric::kL2) {
    return DistanceL2Squared(a, b) <= epsilon * epsilon;
  }
  return DistanceLInf(a, b) <= epsilon;
}

/// ξδ,ε with the comparison threshold precomputed: hot loops calling
/// Similar() recompute ε² per pair; constructing this predicate once per
/// operator hoists it. Evaluates exactly the same comparisons as Similar(),
/// so groupings are unchanged.
class SimilarityPredicate {
 public:
  SimilarityPredicate(Metric metric, double epsilon)
      : metric_(metric), epsilon_(epsilon), epsilon_sq_(epsilon * epsilon) {}

  bool operator()(const Point& a, const Point& b) const {
    if (metric_ == Metric::kL2) {
      return DistanceL2Squared(a, b) <= epsilon_sq_;
    }
    return DistanceLInf(a, b) <= epsilon_;
  }

  Metric metric() const { return metric_; }
  double epsilon() const { return epsilon_; }
  double epsilon_sq() const { return epsilon_sq_; }

 private:
  Metric metric_;
  double epsilon_;
  double epsilon_sq_;
};

}  // namespace sgb::geom

#endif  // SGB_GEOM_POINT_H_
