#ifndef SGB_GEOM_KERNELS_H_
#define SGB_GEOM_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace sgb::geom {

/// Vectorized ε-predicate kernels over SoA point blocks.
///
/// The paper's cost model is dominated by ξδ,ε evaluations (Definitions
/// 1–2); this layer batches them: instead of calling geom::Similar once per
/// pair through pointer-chasing AoS loops, callers lay candidate points out
/// as separate x[]/y[] columns and evaluate one query point against a whole
/// block per call, receiving a selection bitmask. Three implementations
/// exist per kernel:
///
///  * Scalar   — the per-element reference loop, bit-identical to the
///               historical geom::Similar call sites; kept for differential
///               testing and as the remainder loop of the other variants.
///  * Portable — branchless unrolled loops that auto-vectorize under -O2.
///  * AVX2     — explicit intrinsics, compiled only under -DSGB_ENABLE_AVX2
///               and selected at runtime iff the CPU supports AVX2.
///
/// Exactness contract (docs/VECTORIZATION.md): every variant evaluates
/// EXACTLY the comparisons of the scalar predicate — `dx²+dy² <= ε²` under
/// L2 and `max(|dx|,|dy|) <= ε` under L∞ (fmax NaN semantics included) —
/// with no FMA contraction and no reassociation, so the selection masks,
/// and therefore the groupings built from them, are bit-identical across
/// variants.

/// Number of points per fixed-capacity block in the batch pipeline. 256
/// doubles per column = two 4KB columns per block: fits L1 alongside the
/// query state.
inline constexpr size_t kPointBlockCapacity = 256;

/// Mask words needed for an n-point block (one bit per point).
constexpr size_t KernelMaskWords(size_t n) { return (n + 63) / 64; }

/// Fixed-capacity SoA point block: the unit of the engine's batch-at-a-time
/// point extraction.
struct PointBlock {
  alignas(32) double x[kPointBlockCapacity];
  alignas(32) double y[kPointBlockCapacity];
  size_t size = 0;

  bool Full() const { return size == kPointBlockCapacity; }
  void Clear() { size = 0; }
  void PushBack(const Point& p) {
    x[size] = p.x;
    y[size] = p.y;
    ++size;
  }
  Point At(size_t i) const { return Point{x[i], y[i]}; }
};

/// Growable SoA point columns: group member lists, grid cells and join
/// sides keep their coordinates here so the block kernels scan contiguous
/// doubles instead of strided Point structs.
class PointColumns {
 public:
  void Reserve(size_t n) {
    xs_.reserve(n);
    ys_.reserve(n);
  }
  void Assign(std::span<const Point> pts) {
    xs_.clear();
    ys_.clear();
    Reserve(pts.size());
    for (const Point& p : pts) PushBack(p);
  }
  void PushBack(const Point& p) {
    xs_.push_back(p.x);
    ys_.push_back(p.y);
  }
  void Clear() {
    xs_.clear();
    ys_.clear();
  }
  size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  const double* xs() const { return xs_.data(); }
  const double* ys() const { return ys_.data(); }
  Point operator[](size_t i) const { return Point{xs_[i], ys_[i]}; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Calls fn(i) for every set bit of an n-point selection mask, in ascending
/// index order — the order every scalar call site enumerated matches in, so
/// arbitration-order-sensitive consumers (union sequences, JOIN-ANY
/// candidate lists) behave identically.
template <typename Fn>
void ForEachSetBit(const uint64_t* mask, size_t n, Fn&& fn) {
  const size_t words = KernelMaskWords(n);
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      fn(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

// ---- Kernel entry points (runtime-dispatched) ---------------------------
//
// Each writes KernelMaskWords(n) words to `mask` (bits >= n cleared), sets
// bit i iff the predicate holds for point i, and returns the number of set
// bits. The dispatched wrappers also bump the sgb.kernel.invocations /
// sgb.kernel.pairs registry counters.

/// Bit i set iff (qx-xs[i])² + (qy-ys[i])² <= eps_sq.
size_t SimilarBlockL2(double qx, double qy, const double* xs,
                      const double* ys, size_t n, double eps_sq,
                      uint64_t* mask);

/// Bit i set iff fmax(|qx-xs[i]|, |qy-ys[i]|) <= eps (fmax NaN semantics).
size_t SimilarBlockLInf(double qx, double qy, const double* xs,
                        const double* ys, size_t n, double eps,
                        uint64_t* mask);

/// Bit i set iff rect.Contains({xs[i], ys[i]}) — the ε-rectangle pre-filter.
size_t RectFilterBlock(const Rect& rect, const double* xs, const double* ys,
                       size_t n, uint64_t* mask);

// ---- Named variants (differential tests, microbenchmarks) ---------------

size_t SimilarBlockL2Scalar(double qx, double qy, const double* xs,
                            const double* ys, size_t n, double eps_sq,
                            uint64_t* mask);
size_t SimilarBlockLInfScalar(double qx, double qy, const double* xs,
                              const double* ys, size_t n, double eps,
                              uint64_t* mask);
size_t RectFilterBlockScalar(const Rect& rect, const double* xs,
                             const double* ys, size_t n, uint64_t* mask);

size_t SimilarBlockL2Portable(double qx, double qy, const double* xs,
                              const double* ys, size_t n, double eps_sq,
                              uint64_t* mask);
size_t SimilarBlockLInfPortable(double qx, double qy, const double* xs,
                                const double* ys, size_t n, double eps,
                                uint64_t* mask);
size_t RectFilterBlockPortable(const Rect& rect, const double* xs,
                               const double* ys, size_t n, uint64_t* mask);

#if defined(SGB_HAVE_AVX2)
size_t SimilarBlockL2Avx2(double qx, double qy, const double* xs,
                          const double* ys, size_t n, double eps_sq,
                          uint64_t* mask);
size_t SimilarBlockLInfAvx2(double qx, double qy, const double* xs,
                            const double* ys, size_t n, double eps,
                            uint64_t* mask);
size_t RectFilterBlockAvx2(const Rect& rect, const double* xs,
                           const double* ys, size_t n, uint64_t* mask);
#endif

/// Name of the variant the dispatched entry points resolved to at startup:
/// "scalar", "portable" or "avx2". Resolution order: the SGB_KERNEL_VARIANT
/// environment variable if set to an available variant, else AVX2 when
/// compiled in and supported by the CPU, else portable.
const char* ActiveKernelVariant();

/// Batched similarity predicate with the comparison threshold precomputed
/// once per operator (ε² for L2, ε for L∞) and the metric dispatched once
/// instead of per pair.
class BlockSimilarity {
 public:
  BlockSimilarity(Metric metric, double epsilon)
      : scalar_(metric, epsilon) {}

  /// Evaluates q against an n-point SoA block; returns the match count and
  /// writes the selection mask (KernelMaskWords(n) words).
  size_t Match(const Point& q, const double* xs, const double* ys, size_t n,
               uint64_t* mask) const {
    return scalar_.metric() == Metric::kL2
               ? SimilarBlockL2(q.x, q.y, xs, ys, n, scalar_.epsilon_sq(),
                                mask)
               : SimilarBlockLInf(q.x, q.y, xs, ys, n, scalar_.epsilon(),
                                  mask);
  }

  /// The hoisted-threshold scalar predicate, for single-pair call sites.
  const SimilarityPredicate& scalar() const { return scalar_; }

 private:
  SimilarityPredicate scalar_;
};

}  // namespace sgb::geom

#endif  // SGB_GEOM_KERNELS_H_
