#ifndef SGB_GEOM_EPSILON_RECT_H_
#define SGB_GEOM_EPSILON_RECT_H_

#include <span>

#include "geom/rect.h"

namespace sgb::geom {

/// The ε-All bounding rectangle of a group (Definition 5 and Figure 5).
///
/// Maintained as the intersection of the 2ε boxes around every member:
///     Rε-All = ⋂_{m ∈ g} [m.x - ε, m.x + ε] x [m.y - ε, m.y + ε]
///
/// Invariants (Section 6.3):
///  * L∞:  p ∈ Rε-All  ⇔  δ∞(p, m) <= ε for every member m. Exact test.
///  * L2:  p ∉ Rε-All  ⇒  p cannot join the group (conservative filter);
///         points inside may still be false positives, refined by the
///         convex-hull test.
///
/// The class also tracks the member bounding box (MBR), which the
/// overlap-rectangle test of Procedure 4 uses: a group can only contain a
/// point within ε of p if its MBR intersects Rect::Around(p, ε).
class EpsilonRect {
 public:
  EpsilonRect() = default;
  explicit EpsilonRect(double epsilon) : epsilon_(epsilon) {}

  /// Shrinks the ε-All rectangle and grows the MBR for a newly inserted
  /// member. O(1) per insertion, as required for the bounds-checking
  /// approach to beat all-pairs.
  void Insert(const Point& p) {
    if (empty_) {
      all_rect_ = Rect::Around(p, epsilon_);
      mbr_ = Rect{p, p};
      empty_ = false;
      return;
    }
    all_rect_.Clip(Rect::Around(p, epsilon_));
    mbr_.Expand(p);
  }

  /// Rebuilds both rectangles from a member list. Needed after removals
  /// (ELIMINATE / FORM-NEW-GROUP pull members out of groups): the ε-All
  /// rectangle is an intersection and cannot be un-shrunk incrementally.
  void Rebuild(std::span<const Point> members) {
    *this = EpsilonRect(epsilon_);
    for (const Point& p : members) Insert(p);
  }

  /// True iff the group is empty.
  bool empty() const { return empty_; }

  double epsilon() const { return epsilon_; }

  /// The ε-All rectangle (empty Rect when the group has no members).
  const Rect& all_rect() const { return all_rect_; }

  /// The members' minimum bounding rectangle.
  const Rect& mbr() const { return mbr_; }

  /// PointInRectangleTest of Procedure 4: membership filter for p.
  bool PointInRectangleTest(const Point& p) const {
    return !empty_ && all_rect_.Contains(p);
  }

  /// OverlapRectangleTest of Procedure 4: can this group contain a point
  /// within L∞ distance ε of p? (Superset of the L2 case.)
  bool OverlapRectangleTest(const Point& p) const {
    return !empty_ && mbr_.Intersects(Rect::Around(p, epsilon_));
  }

 private:
  double epsilon_ = 0.0;
  bool empty_ = true;
  Rect all_rect_ = Rect::Empty();
  Rect mbr_ = Rect::Empty();
};

}  // namespace sgb::geom

#endif  // SGB_GEOM_EPSILON_RECT_H_
