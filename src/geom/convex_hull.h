#ifndef SGB_GEOM_CONVEX_HULL_H_
#define SGB_GEOM_CONVEX_HULL_H_

#include <span>
#include <vector>

#include "geom/point.h"

namespace sgb::geom {

/// Computes the convex hull of `points` with Andrew's monotone chain.
/// Returns hull vertices in counter-clockwise order without repeating the
/// first vertex. Collinear boundary points are dropped. Handles n <= 2 by
/// returning the (deduplicated) input.
std::vector<Point> ConvexHull(std::span<const Point> points);

/// True iff p lies inside or on the boundary of the convex polygon `hull`
/// (CCW vertex order, as produced by ConvexHull).
bool PointInConvexHull(const Point& p, std::span<const Point> hull);

/// Returns the index of the hull vertex farthest (L2) from p.
/// Precondition: !hull.empty().
size_t FarthestHullVertex(const Point& p, std::span<const Point> hull);

/// Incrementally maintained convex hull used by the SGB-All L2 refinement
/// (Procedure 6, "Convex Hull Test").
///
/// Why the hull suffices: for a candidate point p and a group g, the
/// farthest member of g from p is always a hull vertex, so
///   (a) p inside hull(g)            ⇒ δ2(p, m) <= ε for all m ∈ g, and
///   (b) δ2(p, farthest vertex) <= ε ⇒ δ2(p, m) <= ε for all m ∈ g.
/// (a) holds because the distance from p to any member is at most the
/// distance to some hull vertex, all of which are within ε of each other
/// and of p once p passes (b); see Section 6.4.
class IncrementalHull {
 public:
  /// Adds a member point; recomputes the hull from the previous hull plus p
  /// (the previous interior can never resurface on the new hull). Expected
  /// hull size is O(log k) for k random points, keeping this cheap.
  void Insert(const Point& p);

  /// Rebuilds from scratch (after member removals).
  void Rebuild(std::span<const Point> members);

  /// The Convex Hull Test: true iff p is within L2 distance ε of every
  /// point whose hull this object maintains.
  bool WithinEpsilonOfAll(const Point& p, double epsilon) const;

  const std::vector<Point>& hull() const { return hull_; }

 private:
  std::vector<Point> hull_;
};

}  // namespace sgb::geom

#endif  // SGB_GEOM_CONVEX_HULL_H_
