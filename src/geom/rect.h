#ifndef SGB_GEOM_RECT_H_
#define SGB_GEOM_RECT_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace sgb::geom {

/// An axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
///
/// Rect doubles as the R-tree bounding-box type and as the ε-All rectangle
/// of SGB-All groups. An "empty" rectangle (default-constructed) has
/// inverted bounds and contains nothing.
struct Rect {
  Point lo{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Point hi{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  static Rect Empty() { return Rect{}; }

  /// The 2ε x 2ε box centered at p: all points within L∞ distance ε of p.
  static Rect Around(const Point& p, double epsilon) {
    return Rect{{p.x - epsilon, p.y - epsilon}, {p.x + epsilon, p.y + epsilon}};
  }

  static Rect FromPoints(const Point& a, const Point& b) {
    return Rect{{std::min(a.x, b.x), std::min(a.y, b.y)},
                {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  bool Contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  bool Contains(const Rect& r) const {
    return r.lo.x >= lo.x && r.hi.x <= hi.x && r.lo.y >= lo.y && r.hi.y <= hi.y;
  }

  bool Intersects(const Rect& r) const {
    return !IsEmpty() && !r.IsEmpty() && lo.x <= r.hi.x && r.lo.x <= hi.x &&
           lo.y <= r.hi.y && r.lo.y <= hi.y;
  }

  /// Grows this rectangle to cover p.
  void Expand(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grows this rectangle to cover r.
  void Expand(const Rect& r) {
    lo.x = std::min(lo.x, r.lo.x);
    lo.y = std::min(lo.y, r.lo.y);
    hi.x = std::max(hi.x, r.hi.x);
    hi.y = std::max(hi.y, r.hi.y);
  }

  /// Shrinks this rectangle to its intersection with r (may become empty).
  void Clip(const Rect& r) {
    lo.x = std::max(lo.x, r.lo.x);
    lo.y = std::max(lo.y, r.lo.y);
    hi.x = std::min(hi.x, r.hi.x);
    hi.y = std::min(hi.y, r.hi.y);
  }

  double Area() const {
    if (IsEmpty()) return 0.0;
    return (hi.x - lo.x) * (hi.y - lo.y);
  }

  /// Area of the union bounding box with r minus own area — the R-tree
  /// "enlargement" heuristic.
  double Enlargement(const Rect& r) const {
    Rect merged = *this;
    merged.Expand(r);
    return merged.Area() - Area();
  }

  Point Center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

  friend bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace sgb::geom

#endif  // SGB_GEOM_RECT_H_
