#ifndef SGB_GEOM_ND_H_
#define SGB_GEOM_ND_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <limits>

#include "geom/point.h"  // for Metric

namespace sgb::geom {

/// A point in D-dimensional space. The paper's core focus is 2-D (and 3-D)
/// grouping attributes; the N-D generalization lives here so SGB can group
/// on three or more attributes (see core/sgb_nd.h).
template <size_t D>
struct PointN {
  static_assert(D >= 1, "dimension must be positive");
  std::array<double, D> c{};

  double& operator[](size_t i) { return c[i]; }
  double operator[](size_t i) const { return c[i]; }

  friend bool operator==(const PointN&, const PointN&) = default;
};

template <size_t D>
double DistanceL2Squared(const PointN<D>& a, const PointN<D>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < D; ++i) {
    const double d = a.c[i] - b.c[i];
    sum += d * d;
  }
  return sum;
}

template <size_t D>
double DistanceL2(const PointN<D>& a, const PointN<D>& b) {
  return std::sqrt(DistanceL2Squared(a, b));
}

template <size_t D>
double DistanceLInf(const PointN<D>& a, const PointN<D>& b) {
  double best = 0.0;
  for (size_t i = 0; i < D; ++i) {
    best = std::fmax(best, std::fabs(a.c[i] - b.c[i]));
  }
  return best;
}

/// The similarity predicate ξδ,ε in D dimensions.
template <size_t D>
bool Similar(const PointN<D>& a, const PointN<D>& b, Metric metric,
             double epsilon) {
  if (metric == Metric::kL2) {
    return DistanceL2Squared(a, b) <= epsilon * epsilon;
  }
  return DistanceLInf(a, b) <= epsilon;
}

/// Axis-aligned box in D dimensions; empty when any lo[i] > hi[i].
template <size_t D>
struct RectN {
  PointN<D> lo;
  PointN<D> hi;

  RectN() {
    for (size_t i = 0; i < D; ++i) {
      lo.c[i] = std::numeric_limits<double>::infinity();
      hi.c[i] = -std::numeric_limits<double>::infinity();
    }
  }
  RectN(const PointN<D>& low, const PointN<D>& high) : lo(low), hi(high) {}

  static RectN Empty() { return RectN(); }

  /// The L∞ ball of radius ε around p.
  static RectN Around(const PointN<D>& p, double epsilon) {
    RectN r;
    for (size_t i = 0; i < D; ++i) {
      r.lo.c[i] = p.c[i] - epsilon;
      r.hi.c[i] = p.c[i] + epsilon;
    }
    return r;
  }

  bool IsEmpty() const {
    for (size_t i = 0; i < D; ++i) {
      if (lo.c[i] > hi.c[i]) return true;
    }
    return false;
  }

  bool Contains(const PointN<D>& p) const {
    for (size_t i = 0; i < D; ++i) {
      if (p.c[i] < lo.c[i] || p.c[i] > hi.c[i]) return false;
    }
    return true;
  }

  bool Contains(const RectN& r) const {
    for (size_t i = 0; i < D; ++i) {
      if (r.lo.c[i] < lo.c[i] || r.hi.c[i] > hi.c[i]) return false;
    }
    return true;
  }

  bool Intersects(const RectN& r) const {
    if (IsEmpty() || r.IsEmpty()) return false;
    for (size_t i = 0; i < D; ++i) {
      if (lo.c[i] > r.hi.c[i] || r.lo.c[i] > hi.c[i]) return false;
    }
    return true;
  }

  void Expand(const PointN<D>& p) {
    for (size_t i = 0; i < D; ++i) {
      lo.c[i] = std::fmin(lo.c[i], p.c[i]);
      hi.c[i] = std::fmax(hi.c[i], p.c[i]);
    }
  }

  void Expand(const RectN& r) {
    for (size_t i = 0; i < D; ++i) {
      lo.c[i] = std::fmin(lo.c[i], r.lo.c[i]);
      hi.c[i] = std::fmax(hi.c[i], r.hi.c[i]);
    }
  }

  void Clip(const RectN& r) {
    for (size_t i = 0; i < D; ++i) {
      lo.c[i] = std::fmax(lo.c[i], r.lo.c[i]);
      hi.c[i] = std::fmin(hi.c[i], r.hi.c[i]);
    }
  }

  /// D-volume (0 for empty boxes).
  double Area() const {
    if (IsEmpty()) return 0.0;
    double v = 1.0;
    for (size_t i = 0; i < D; ++i) v *= hi.c[i] - lo.c[i];
    return v;
  }

  double Enlargement(const RectN& r) const {
    RectN merged = *this;
    merged.Expand(r);
    return merged.Area() - Area();
  }

  friend bool operator==(const RectN&, const RectN&) = default;
};

}  // namespace sgb::geom

#endif  // SGB_GEOM_ND_H_
