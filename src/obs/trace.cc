#include "obs/trace.h"

#include <cstdio>

namespace sgb::obs {

QueryTrace::QueryTrace() : t0_(std::chrono::steady_clock::now()) {
  Rec root;
  root.name = "query";
  root.start_ns = 0;
  root.parent_id = 0;
  root.tid = 0;
  recs_.push_back(std::move(root));
  threads_[std::this_thread::get_id()] = ThreadState{};
  next_tid_ = 1;
}

uint64_t QueryTrace::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

QueryTrace::ThreadState& QueryTrace::StateForThisThread() {
  auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.tid = next_tid_++;
  return it->second;
}

void QueryTrace::Start(std::string name) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  ThreadState& state = StateForThisThread();
  Rec rec;
  rec.name = std::move(name);
  rec.start_ns = now;
  rec.parent_id = state.open.empty() ? 0 : state.open.back();
  rec.tid = state.tid;
  state.open.push_back(recs_.size());
  recs_.push_back(std::move(rec));
  dirty_ = true;
}

void QueryTrace::End() {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  ThreadState& state = StateForThisThread();
  if (state.open.empty()) return;
  Rec& rec = recs_[state.open.back()];
  rec.duration_ns = now - rec.start_ns;
  rec.open = false;
  state.open.pop_back();
  dirty_ = true;
}

void QueryTrace::AddAttribute(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadState& state = StateForThisThread();
  const uint64_t id = state.open.empty() ? 0 : state.open.back();
  recs_[id].attributes[key] = value;
  dirty_ = true;
}

uint64_t QueryTrace::BeginSpan(std::string name, uint64_t parent_id) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  ThreadState& state = StateForThisThread();
  Rec rec;
  rec.name = std::move(name);
  rec.start_ns = now;
  rec.parent_id = parent_id < recs_.size() ? parent_id : 0;
  rec.tid = state.tid;
  const uint64_t id = recs_.size();
  recs_.push_back(std::move(rec));
  dirty_ = true;
  return id;
}

void QueryTrace::EndSpan(uint64_t id) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= recs_.size() || !recs_[id].open) return;
  recs_[id].duration_ns = now - recs_[id].start_ns;
  recs_[id].open = false;
  dirty_ = true;
}

void QueryTrace::AddSpanAttribute(uint64_t id, const std::string& key,
                                  double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= recs_.size()) return;
  recs_[id].attributes[key] = value;
  dirty_ = true;
}

uint64_t QueryTrace::CurrentSpanId() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = threads_.find(std::this_thread::get_id());
  if (it == threads_.end() || it->second.open.empty()) return 0;
  return it->second.open.back();
}

void QueryTrace::Finish() {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 1; i < recs_.size(); ++i) {
    if (recs_[i].open) {
      recs_[i].duration_ns = now - recs_[i].start_ns;
      recs_[i].open = false;
    }
  }
  for (auto& [thread_id, state] : threads_) state.open.clear();
  if (!finished_) {
    recs_[0].duration_ns = now;
    recs_[0].open = false;
    finished_ = true;
  }
  dirty_ = true;
}

uint64_t QueryTrace::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

/// Rebuilds the nested tree from the flat records. Children keep creation
/// (record) order, matching the single-threaded behavior of the original
/// nested implementation.
void QueryTrace::RebuildLocked() const {
  const size_t n = recs_.size();
  std::vector<std::vector<uint64_t>> kids(n);
  for (size_t i = 1; i < n; ++i) kids[recs_[i].parent_id].push_back(i);

  cached_root_ = TraceSpan{};
  auto fill = [&](auto&& self, uint64_t id, TraceSpan* dst) -> void {
    const Rec& rec = recs_[id];
    dst->name = rec.name;
    dst->start_ns = rec.start_ns;
    dst->duration_ns = rec.duration_ns;
    dst->id = id;
    dst->parent_id = rec.parent_id;
    dst->tid = rec.tid;
    dst->attributes = rec.attributes;
    dst->children.resize(kids[id].size());
    for (size_t k = 0; k < kids[id].size(); ++k) {
      self(self, kids[id][k], &dst->children[k]);
    }
  };
  fill(fill, 0, &cached_root_);
  dirty_ = false;
}

const TraceSpan& QueryTrace::root() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirty_) RebuildLocked();
  return cached_root_;
}

namespace {

std::string FormatAttr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void RenderText(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  char buf[64];
  std::snprintf(buf, sizeof buf, " %.3fms", span.DurationMillis());
  *out += buf;
  if (span.tid != 0) {
    std::snprintf(buf, sizeof buf, " tid=%llu",
                  static_cast<unsigned long long>(span.tid));
    *out += buf;
  }
  if (!span.attributes.empty()) {
    *out += " (";
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) *out += ", ";
      first = false;
      *out += key + "=" + FormatAttr(value);
    }
    *out += ')';
  }
  *out += '\n';
  for (const TraceSpan& child : span.children) {
    RenderText(child, depth + 1, out);
  }
}

void RenderJson(const TraceSpan& span, std::string* out) {
  *out += "{\"name\":\"" + span.name + "\"";
  *out += ",\"start_ns\":" + std::to_string(span.start_ns);
  *out += ",\"duration_ns\":" + std::to_string(span.duration_ns);
  if (span.tid != 0) *out += ",\"tid\":" + std::to_string(span.tid);
  if (!span.attributes.empty()) {
    *out += ",\"attributes\":{";
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) *out += ',';
      first = false;
      *out += '"' + key + "\":" + FormatAttr(value);
    }
    *out += '}';
  }
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    bool first = true;
    for (const TraceSpan& child : span.children) {
      if (!first) *out += ',';
      first = false;
      RenderJson(child, out);
    }
    *out += ']';
  }
  *out += '}';
}

}  // namespace

std::string QueryTrace::ToText() {
  Finish();
  std::string out;
  RenderText(root(), 0, &out);
  return out;
}

std::string QueryTrace::ToJson() {
  Finish();
  std::string out;
  RenderJson(root(), &out);
  return out;
}

}  // namespace sgb::obs
