#include "obs/trace.h"

#include <cstdio>

namespace sgb::obs {

QueryTrace::QueryTrace() : t0_(std::chrono::steady_clock::now()) {
  root_.name = "query";
}

uint64_t QueryTrace::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

namespace {

TraceSpan* Resolve(TraceSpan* root, const std::vector<size_t>& path) {
  TraceSpan* span = root;
  for (const size_t i : path) span = &span->children[i];
  return span;
}

}  // namespace

void QueryTrace::Start(std::string name) {
  TraceSpan* parent = Resolve(&root_, open_path_);
  TraceSpan child;
  child.name = std::move(name);
  child.start_ns = NowNs();
  open_path_.push_back(parent->children.size());
  parent->children.push_back(std::move(child));
}

void QueryTrace::End() {
  if (open_path_.empty()) return;
  TraceSpan* span = Resolve(&root_, open_path_);
  span->duration_ns = NowNs() - span->start_ns;
  open_path_.pop_back();
}

void QueryTrace::AddAttribute(const std::string& key, double value) {
  Resolve(&root_, open_path_)->attributes[key] = value;
}

void QueryTrace::Finish() {
  while (!open_path_.empty()) End();
  if (!finished_) {
    root_.duration_ns = NowNs();
    finished_ = true;
  }
}

namespace {

std::string FormatAttr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void RenderText(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  char buf[64];
  std::snprintf(buf, sizeof buf, " %.3fms", span.DurationMillis());
  *out += buf;
  if (!span.attributes.empty()) {
    *out += " (";
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) *out += ", ";
      first = false;
      *out += key + "=" + FormatAttr(value);
    }
    *out += ')';
  }
  *out += '\n';
  for (const TraceSpan& child : span.children) {
    RenderText(child, depth + 1, out);
  }
}

void RenderJson(const TraceSpan& span, std::string* out) {
  *out += "{\"name\":\"" + span.name + "\"";
  *out += ",\"start_ns\":" + std::to_string(span.start_ns);
  *out += ",\"duration_ns\":" + std::to_string(span.duration_ns);
  if (!span.attributes.empty()) {
    *out += ",\"attributes\":{";
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) *out += ',';
      first = false;
      *out += '"' + key + "\":" + FormatAttr(value);
    }
    *out += '}';
  }
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    bool first = true;
    for (const TraceSpan& child : span.children) {
      if (!first) *out += ',';
      first = false;
      RenderJson(child, out);
    }
    *out += ']';
  }
  *out += '}';
}

}  // namespace

std::string QueryTrace::ToText() {
  Finish();
  std::string out;
  RenderText(root_, 0, &out);
  return out;
}

std::string QueryTrace::ToJson() {
  Finish();
  std::string out;
  RenderJson(root_, &out);
  return out;
}

}  // namespace sgb::obs
