#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <mutex>

namespace sgb::obs {

// ---- Histogram -----------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t sample) {
  // Samples < kSubBuckets map 1:1 onto the first sub-buckets; above that,
  // tier t covers [2^t, 2^(t+1)) split into kSubBuckets equal ranges.
  if (sample < kSubBuckets) return static_cast<size_t>(sample);
  const int tier = 63 - std::countl_zero(sample);
  const uint64_t tier_base = uint64_t{1} << tier;
  const uint64_t sub_width = tier_base / kSubBuckets;  // >= 1 once tier >= 2
  const size_t sub = static_cast<size_t>((sample - tier_base) / sub_width);
  const size_t index = static_cast<size_t>(tier) * kSubBuckets + sub;
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t tier = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  const uint64_t tier_base = uint64_t{1} << tier;
  const uint64_t sub_width = tier_base / kSubBuckets;
  return tier_base + sub_width * (sub + 1) - 1;
}

void Histogram::Record(uint64_t sample) {
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (sample < cur &&
         !min_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (sample > cur &&
         !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  return ValueAtQuantile(p / 100.0);
}

double Histogram::ValueAtQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(n);
  double seen = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t b = buckets_[i].load(std::memory_order_relaxed);
    if (b == 0) continue;
    seen += static_cast<double>(b);
    if (seen >= rank) {
      // Clamp the bucket bound into the observed [min, max] range so small
      // histograms don't report values beyond any recorded sample.
      const double bound = static_cast<double>(BucketUpperBound(i));
      const double hi = static_cast<double>(max());
      const double lo = static_cast<double>(min());
      return bound > hi ? hi : (bound < lo ? lo : bound);
    }
  }
  return static_cast<double>(max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---- MetricsSnapshot -----------------------------------------------------

namespace {

/// Metric names are restricted to [a-z0-9._] by convention, but escape the
/// JSON-significant characters anyway so a stray name can't corrupt output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof buf, "counter   %-48s %" PRIu64 "\n",
                  name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof buf, "gauge     %-48s %g\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof buf,
                  "histogram %-48s count=%" PRIu64 " mean=%.2f p50=%.0f"
                  " p90=%.0f p95=%.0f p99=%.0f max=%" PRIu64 "\n",
                  name.c_str(), h.count, h.mean, h.p50, h.p90, h.p95, h.p99,
                  h.max);
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + JsonDouble(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"mean\":" + JsonDouble(h.mean);
    out += ",\"p50\":" + JsonDouble(h.p50);
    out += ",\"p90\":" + JsonDouble(h.p90);
    out += ",\"p95\":" + JsonDouble(h.p95);
    out += ",\"p99\":" + JsonDouble(h.p99);
    out += '}';
  }
  out += "}}";
  return out;
}

// ---- MetricsRegistry -----------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

/// Fast path: shared lock + lookup (metrics already exist on every hot
/// path after first use). Slow path: upgrade to an exclusive lock and
/// insert, re-checking under the exclusive lock since another thread may
/// have registered the name in between.
template <typename T>
T& MetricsRegistry::GetOrCreate(
    std::map<std::string, std::unique_ptr<T>>* metrics,
    const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = metrics->find(name);
    if (it != metrics->end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = (*metrics)[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return *slot;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(&counters_, name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(&gauges_, name);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(&histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSummary s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->Mean();
    s.p50 = h->Percentile(50);
    s.p90 = h->Percentile(90);
    s.p95 = h->Percentile(95);
    s.p99 = h->Percentile(99);
    snap.histograms[name] = s;
  }
  return snap;
}

void MetricsRegistry::Reset() {
  // Shared suffices: Reset() only touches the atomic metric values, never
  // the maps themselves.
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace sgb::obs
