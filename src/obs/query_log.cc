#include "obs/query_log.h"

namespace sgb::obs {

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryLog& QueryLog::GlobalMirror() {
  static QueryLog* mirror = new QueryLog(4 * kDefaultCapacity);
  return *mirror;
}

uint64_t QueryLog::NextId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void QueryLog::Record(QueryLogEntry entry,
                      std::vector<OperatorStatsEntry> ops) {
  if (this != &GlobalMirror()) {
    GlobalMirror().Record(entry, {});
  }
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(Slot{std::move(entry), std::move(ops)});
  while (slots_.size() > capacity_) slots_.pop_front();
}

std::vector<QueryLogEntry> QueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryLogEntry> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(slot.entry);
  return out;
}

std::vector<OperatorStatsEntry> QueryLog::OperatorStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OperatorStatsEntry> out;
  for (const Slot& slot : slots_) {
    out.insert(out.end(), slot.ops.begin(), slot.ops.end());
  }
  return out;
}

size_t QueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

}  // namespace sgb::obs
