#ifndef SGB_OBS_TRACE_H_
#define SGB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgb::obs {

/// One timed interval in a query's execution, with optional numeric
/// attributes (row counts, distance computations, ...) and nested
/// sub-spans. Offsets are nanoseconds from the owning trace's start.
struct TraceSpan {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::map<std::string, double> attributes;  // name-sorted, deterministic
  std::vector<TraceSpan> children;

  double DurationMillis() const {
    return static_cast<double>(duration_ns) / 1e6;
  }
};

/// Records a hierarchy of timed spans for one query: the executor opens
/// spans for parse/plan/execute, operators or callers may nest deeper.
/// Spans must be ended in LIFO order (use ScopedSpan). Not thread-safe —
/// one trace belongs to one query on one thread.
class QueryTrace {
 public:
  QueryTrace();

  /// Opens a child span of the innermost open span (or of the root).
  void Start(std::string name);

  /// Closes the innermost open span, fixing its duration.
  void End();

  /// Attaches `value` to the innermost open span (the root when none).
  void AddAttribute(const std::string& key, double value);

  /// Closes any still-open spans and fixes the root duration. Called
  /// implicitly by ToText()/ToJson() if needed.
  void Finish();

  const TraceSpan& root() const { return root_; }

  /// Indented listing:
  ///   query 1.234ms
  ///     parse 0.012ms
  ///     execute 1.1ms (rows=42)
  std::string ToText();

  /// {"name":"query","start_ns":0,"duration_ns":...,
  ///  "attributes":{...},"children":[...]}
  std::string ToJson();

 private:
  uint64_t NowNs() const;

  std::chrono::steady_clock::time_point t0_;
  TraceSpan root_;
  /// Indexes into the nested children vectors identifying the open span
  /// path; stable across reallocation (unlike raw pointers).
  std::vector<size_t> open_path_;
  bool finished_ = false;
};

/// RAII span: Start() on construction, End() on destruction. A null trace
/// makes every operation a no-op, so call sites need no branching.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string name) : trace_(trace) {
    if (trace_ != nullptr) trace_->Start(std::move(name));
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttribute(const std::string& key, double value) {
    if (trace_ != nullptr) trace_->AddAttribute(key, value);
  }

 private:
  QueryTrace* trace_;
};

}  // namespace sgb::obs

#endif  // SGB_OBS_TRACE_H_
