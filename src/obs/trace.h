#ifndef SGB_OBS_TRACE_H_
#define SGB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sgb::obs {

/// One timed interval in a query's execution, with optional numeric
/// attributes (row counts, distance computations, ...) and nested
/// sub-spans. Offsets are nanoseconds from the owning trace's start.
struct TraceSpan {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Stable span id (0 = the root), its parent's id, and the trace-local
  /// thread ordinal that recorded it (0 = the thread that created the
  /// trace). These let PROFILE and the Chrome exporter attribute parallel
  /// worker activity without guessing from nesting alone.
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint64_t tid = 0;
  std::map<std::string, double> attributes;  // name-sorted, deterministic
  std::vector<TraceSpan> children;

  double DurationMillis() const {
    return static_cast<double>(duration_ns) / 1e6;
  }
};

/// Records a hierarchy of timed spans for one query: the executor opens
/// spans for parse/plan/execute; operators, spill paths, and parallel SGB
/// workers nest deeper. Internally the trace is a flat, mutex-protected
/// record list with per-thread open-span stacks, so concurrent workers may
/// record spans into the same trace; the nested TraceSpan tree returned by
/// root() is rebuilt on demand.
///
/// Two usage styles:
///  * Stack style (Start/End/AddAttribute, or ScopedSpan): spans nest
///    under the calling thread's innermost open span, LIFO per thread. A
///    thread with no open span parents under the root.
///  * Explicit-parent style (BeginSpan/EndSpan, or the ScopedSpan overload
///    taking a parent id): for worker threads whose logical parent is a
///    span opened on another thread. Capture CurrentSpanId() before
///    fanning out and pass it to each worker.
class QueryTrace {
 public:
  QueryTrace();

  /// Opens a child span of the calling thread's innermost open span (or of
  /// the root).
  void Start(std::string name);

  /// Closes the calling thread's innermost open span, fixing its duration.
  void End();

  /// Attaches `value` to the calling thread's innermost open span (the
  /// root when none).
  void AddAttribute(const std::string& key, double value);

  /// Opens a span as an explicit child of `parent_id` (0 = root), without
  /// touching any thread's open stack. Returns the new span's id.
  uint64_t BeginSpan(std::string name, uint64_t parent_id);

  /// Closes a span opened with BeginSpan().
  void EndSpan(uint64_t id);

  /// Attaches `value` to the span with the given id.
  void AddSpanAttribute(uint64_t id, const std::string& key, double value);

  /// Id of the calling thread's innermost open span; 0 (the root) when the
  /// thread has none open.
  uint64_t CurrentSpanId() const;

  /// Closes any still-open spans and fixes the root duration. Called
  /// implicitly by ToText()/ToJson() if needed.
  void Finish();

  /// The span tree (rebuilt from the flat records when stale). Children
  /// appear in creation order. Valid to call before Finish(); open spans
  /// then report duration 0.
  const TraceSpan& root() const;

  /// Steady-clock instant all span offsets are relative to.
  std::chrono::steady_clock::time_point start_time() const { return t0_; }

  /// Number of distinct threads that have recorded into this trace.
  uint64_t thread_count() const;

  /// Indented listing:
  ///   query 1.234ms
  ///     parse 0.012ms
  ///     execute 1.1ms (rows=42)
  std::string ToText();

  /// {"name":"query","start_ns":0,"duration_ns":...,
  ///  "attributes":{...},"children":[...]}
  std::string ToJson();

 private:
  /// Flat span record; index in recs_ is the span id (0 = root).
  struct Rec {
    std::string name;
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
    uint64_t parent_id = 0;
    uint64_t tid = 0;
    bool open = true;
    std::map<std::string, double> attributes;
  };

  struct ThreadState {
    uint64_t tid = 0;
    std::vector<uint64_t> open;  // span ids, innermost last
  };

  uint64_t NowNs() const;
  ThreadState& StateForThisThread();  // requires mu_ held
  void RebuildLocked() const;         // requires mu_ held

  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Rec> recs_;
  std::map<std::thread::id, ThreadState> threads_;
  uint64_t next_tid_ = 0;
  bool finished_ = false;
  mutable TraceSpan cached_root_;
  mutable bool dirty_ = true;
};

/// RAII span: opens on construction, ends on destruction. A null trace
/// makes every operation a no-op, so call sites need no branching. The
/// two-argument form uses the thread's open stack; the parent-id form
/// records an explicit-parent span (for cross-thread workers).
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string name) : trace_(trace) {
    if (trace_ != nullptr) trace_->Start(std::move(name));
  }
  ScopedSpan(QueryTrace* trace, std::string name, uint64_t parent_id)
      : trace_(trace), by_id_(true) {
    if (trace_ != nullptr) {
      id_ = trace_->BeginSpan(std::move(name), parent_id);
    }
  }
  ~ScopedSpan() {
    if (trace_ == nullptr) return;
    if (by_id_) {
      trace_->EndSpan(id_);
    } else {
      trace_->End();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttribute(const std::string& key, double value) {
    if (trace_ == nullptr) return;
    if (by_id_) {
      trace_->AddSpanAttribute(id_, key, value);
    } else {
      trace_->AddAttribute(key, value);
    }
  }

 private:
  QueryTrace* trace_;
  bool by_id_ = false;
  uint64_t id_ = 0;
};

}  // namespace sgb::obs

#endif  // SGB_OBS_TRACE_H_
