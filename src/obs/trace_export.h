#ifndef SGB_OBS_TRACE_EXPORT_H_
#define SGB_OBS_TRACE_EXPORT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace sgb::obs {

/// Session-level span accumulator that serializes to the Chrome trace-event
/// JSON format ({"traceEvents":[...]}), loadable in chrome://tracing and
/// Perfetto. Enabled with `SET trace = 1`; each traced query's span tree is
/// appended with timestamps re-based onto the session clock, so queries line
/// up on one timeline. Thread lanes are the trace-local thread ordinals
/// (lane 0 = the session thread, lanes 1.. = pool workers).
class TraceLog {
 public:
  TraceLog();

  /// Appends every span of `trace` as a complete ("ph":"X") event. The
  /// trace should be Finish()ed first; open spans would export with zero
  /// duration.
  void Append(const QueryTrace& trace, uint64_t query_id);

  /// {"traceEvents":[...]} with process/thread metadata events first, then
  /// span events in append order. Timestamps are microseconds since the
  /// TraceLog was created.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path` (IoError on failure).
  Status WriteChromeJson(const std::string& path) const;

  size_t event_count() const;
  void Clear();

 private:
  struct Event {
    std::string name;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;
    uint64_t tid = 0;
    uint64_t query_id = 0;
    std::map<std::string, double> args;
  };

  void AppendSpan(const TraceSpan& span, uint64_t base_us, uint64_t query_id);

  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  uint64_t max_tid_ = 0;
};

}  // namespace sgb::obs

#endif  // SGB_OBS_TRACE_EXPORT_H_
