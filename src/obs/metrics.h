#ifndef SGB_OBS_METRICS_H_
#define SGB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

namespace sgb::obs {

/// Monotonically increasing event count. Lock-free; safe to Add() from any
/// thread.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written (or maximum) instantaneous value, e.g. peak memory bytes.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  /// Monotone maximum — for peak trackers updated from several sites.
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-linear histogram of non-negative integer samples (typically
/// microseconds or item counts), in the HdrHistogram/RocksDB style: samples
/// are bucketed by their power-of-two tier, each tier split into
/// `kSubBuckets` linear sub-buckets, so relative error of any percentile is
/// bounded by 1/kSubBuckets. All operations are lock-free.
class Histogram {
 public:
  static constexpr size_t kTiers = 64;
  static constexpr size_t kSubBuckets = 4;
  static constexpr size_t kNumBuckets = kTiers * kSubBuckets;

  void Record(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Interpolated value at percentile `p` in [0, 100]; 0 when empty.
  double Percentile(double p) const;

  /// Value at quantile `q` in [0, 1] — same estimator as Percentile()
  /// (Percentile(p) == ValueAtQuantile(p / 100)). Convenience accessors
  /// below match the names the bench harnesses export.
  double ValueAtQuantile(double q) const;
  double P50() const { return ValueAtQuantile(0.50); }
  double P95() const { return ValueAtQuantile(0.95); }
  double P99() const { return ValueAtQuantile(0.99); }

  void Reset();

  /// Upper bound (inclusive) of bucket `index`; exposed for tests.
  static uint64_t BucketUpperBound(size_t index);
  static size_t BucketIndex(uint64_t sample);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of every registered metric, with deterministic
/// (name-sorted) ordering so snapshots diff cleanly across runs and PRs.
struct MetricsSnapshot {
  struct HistogramSummary {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Human-readable listing, one metric per line.
  std::string ToText() const;

  /// Machine-readable snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
  std::string ToJson() const;
};

/// Named metric registry. Metric objects are created on first use and live
/// for the registry's lifetime, so call sites may cache the returned
/// references. Names follow "layer.component.metric" dotted lowercase
/// (see docs/OBSERVABILITY.md).
///
/// Thread safety: every method may be called concurrently from any thread.
/// Updates through the returned references are lock-free atomics; the
/// lookup itself takes the registry lock in shared mode, so concurrent
/// operators (parallel SGB workers, pipelined plan nodes) never serialize
/// on each other unless one of them is registering a brand-new name.
class MetricsRegistry {
 public:
  /// Process-wide registry used by the core operators and the bench
  /// harnesses.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations are kept).
  void Reset();

 private:
  template <typename T>
  T& GetOrCreate(std::map<std::string, std::unique_ptr<T>>* metrics,
                 const std::string& name);

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sgb::obs

#endif  // SGB_OBS_METRICS_H_
