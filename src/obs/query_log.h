#ifndef SGB_OBS_QUERY_LOG_H_
#define SGB_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace sgb::obs {

/// One finished (or aborted) statement in the engine's query log. Every
/// Materialize-style execution produces exactly one entry, whatever its
/// outcome — ok, cancelled, timeout, mem_exceeded, shed, or error — so the
/// log is the ground truth for "what ran and what did it cost".
struct QueryLogEntry {
  uint64_t id = 0;           ///< monotonically increasing statement id
  int64_t session_id = 0;    ///< session that ran it (0 = unknown)
  std::string text;          ///< statement text as submitted
  std::string status;        ///< ok|cancelled|timeout|mem_exceeded|shed|error
  bool slow = false;         ///< wall_micros exceeded `slow_query_micros`
  std::string admission;     ///< admitted|queued|shed (off mode ⇒ admitted)
  int64_t queue_micros = 0;  ///< admission queue wait
  int64_t plan_micros = 0;   ///< parse + bind + plan
  int64_t exec_micros = 0;   ///< operator tree execution
  int64_t wall_micros = 0;   ///< full statement lifecycle (queue+plan+exec)
  int64_t cpu_micros = 0;    ///< process CPU time consumed (0 if unknown)
  int64_t rows_in = 0;       ///< rows produced by the plan's table scans
  int64_t rows_out = 0;      ///< rows returned to the client
  int64_t peak_memory_bytes = 0;   ///< per-query tracker high-water mark
  int64_t estimated_bytes = 0;     ///< plan-time footprint estimate
  int64_t spill_events = 0;
  int64_t spill_bytes = 0;
  int64_t dop = 0;           ///< SGB degree of parallelism (0 when no SGB)
  std::string tier;          ///< none|sgb-all|sgb-any|sgb-1d
  int64_t est_rows = 0;      ///< cost-model row estimate (0 = no statistics)
  std::string strategy;      ///< chosen SGB tier / group-by strategy ("" none)
};

/// Per-operator execution counters for one logged query; rows of the
/// system.operator_stats table. `op_index` is the operator's preorder
/// position in the plan, `depth` its nesting level.
struct OperatorStatsEntry {
  uint64_t query_id = 0;
  int64_t op_index = 0;
  int64_t depth = 0;
  std::string op;
  int64_t rows = 0;
  int64_t batches = 0;
  int64_t open_micros = 0;
  int64_t next_micros = 0;
  int64_t peak_memory_bytes = 0;
};

/// Bounded, thread-safe ring buffer of recent queries plus their
/// per-operator stats. When full, the oldest query (and its operator rows)
/// is evicted, so memory stays O(capacity) regardless of workload length.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit QueryLog(size_t capacity = kDefaultCapacity);

  /// Process-wide mirror of every entry recorded by any log in this
  /// process. Per-Database logs die with their Database, so post-mortem
  /// consumers (the CI failure-diagnostics dump) read the mirror instead;
  /// it keeps the most recent 4 * kDefaultCapacity entries without their
  /// per-operator rows.
  static QueryLog& GlobalMirror();

  /// Allocates the next statement id (thread-safe, never reused).
  uint64_t NextId();

  /// Appends one finished query, evicting the oldest beyond capacity.
  void Record(QueryLogEntry entry, std::vector<OperatorStatsEntry> ops);

  /// Snapshot of retained entries, oldest first.
  std::vector<QueryLogEntry> Entries() const;

  /// Snapshot of retained per-operator rows, oldest query first.
  std::vector<OperatorStatsEntry> OperatorStats() const;

  size_t capacity() const { return capacity_; }
  size_t size() const;
  void Clear();

 private:
  struct Slot {
    QueryLogEntry entry;
    std::vector<OperatorStatsEntry> ops;
  };

  const size_t capacity_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<Slot> slots_;
};

}  // namespace sgb::obs

#endif  // SGB_OBS_QUERY_LOG_H_
