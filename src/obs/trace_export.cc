#include "obs/trace_export.h"

#include <cstdio>

namespace sgb::obs {

TraceLog::TraceLog() : t0_(std::chrono::steady_clock::now()) {}

void TraceLog::AppendSpan(const TraceSpan& span, uint64_t base_us,
                          uint64_t query_id) {
  Event ev;
  ev.name = span.name;
  ev.ts_us = base_us + span.start_ns / 1000;
  ev.dur_us = span.duration_ns / 1000;
  ev.tid = span.tid;
  ev.query_id = query_id;
  ev.args = span.attributes;
  if (ev.tid > max_tid_) max_tid_ = ev.tid;
  events_.push_back(std::move(ev));
  for (const TraceSpan& child : span.children) {
    AppendSpan(child, base_us, query_id);
  }
}

void TraceLog::Append(const QueryTrace& trace, uint64_t query_id) {
  const auto offset = trace.start_time() - t0_;
  const uint64_t base_us = offset.count() <= 0
                               ? 0
                               : static_cast<uint64_t>(
                                     std::chrono::duration_cast<
                                         std::chrono::microseconds>(offset)
                                         .count());
  const TraceSpan& root = trace.root();
  std::lock_guard<std::mutex> lock(mu_);
  AppendSpan(root, base_us, query_id);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string TraceLog::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"sgb-engine\"}}";
  for (uint64_t t = 0; t <= max_tid_; ++t) {
    out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(t) + ",\"args\":{\"name\":\"" +
           (t == 0 ? std::string("session") : "worker-" + std::to_string(t)) +
           "\"}}";
  }
  for (const Event& ev : events_) {
    out += ",{\"name\":\"" + JsonEscape(ev.name) + "\"";
    out += ",\"cat\":\"query\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(ev.ts_us);
    out += ",\"dur\":" + std::to_string(ev.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(ev.tid);
    out += ",\"args\":{\"query_id\":" + std::to_string(ev.query_id);
    for (const auto& [key, value] : ev.args) {
      out += ",\"" + JsonEscape(key) + "\":" + JsonDouble(value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status TraceLog::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("trace export: cannot open " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("trace export: short write to " + path);
  }
  return Status::OK();
}

size_t TraceLog::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  max_tid_ = 0;
}

}  // namespace sgb::obs
