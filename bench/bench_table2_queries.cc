// Table 2: the performance-evaluation queries on TPC-H — the plain
// GROUP BY business questions (GB1-GB3) and their similarity versions
// (SGB1-SGB6), each SGB-All query under both metrics and all three
// ON-OVERLAP actions, end-to-end through the SQL pipeline.

#include <map>
#include <memory>

#include "bench_common.h"
#include "engine/executor.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace {

using sgb::bench::BenchScale;
using sgb::core::OverlapClause;
using sgb::geom::Metric;

constexpr double kEpsilon = 0.2;

const sgb::engine::Database& Db() {
  static auto* db = [] {
    sgb::workload::TpchConfig config;
    config.scale_factor = 0.5 * BenchScale();
    auto d = new sgb::engine::Database();
    sgb::workload::GenerateTpch(config).RegisterAll(d->catalog());
    return d;
  }();
  return *db;
}

void BM_Query(benchmark::State& state, const std::string& sql) {
  const auto& db = Db();
  size_t rows = 0;
  for (auto _ : state) {
    auto result = db.Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result.value().NumRows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["out_rows"] = static_cast<double>(rows);
}

void Register(const std::string& name, const std::string& sql) {
  benchmark::RegisterBenchmark(
      name.c_str(), [sql](benchmark::State& state) { BM_Query(state, sql); })
      ->Unit(benchmark::kMillisecond);
}

const char* MetricTag(Metric metric) {
  return metric == Metric::kL2 ? "L2" : "LINF";
}

const char* ClauseTag(OverlapClause clause) {
  switch (clause) {
    case OverlapClause::kJoinAny:
      return "JoinAny";
    case OverlapClause::kEliminate:
      return "Eliminate";
    case OverlapClause::kFormNewGroup:
      return "FormNew";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  namespace wl = sgb::workload;
  Register("Table2/GB1", wl::Gb1());
  Register("Table2/GB2", wl::Gb2());
  Register("Table2/GB3", wl::Gb3());

  const Metric metrics[] = {Metric::kL2, Metric::kLInf};
  const OverlapClause clauses[] = {OverlapClause::kJoinAny,
                                   OverlapClause::kEliminate,
                                   OverlapClause::kFormNewGroup};
  for (const Metric metric : metrics) {
    for (const OverlapClause clause : clauses) {
      const std::string suffix =
          std::string("_") + MetricTag(metric) + "_" + ClauseTag(clause);
      Register("Table2/SGB1" + suffix, wl::Sgb1(kEpsilon, metric, clause));
      Register("Table2/SGB3" + suffix, wl::Sgb3(kEpsilon, metric, clause));
      Register("Table2/SGB5" + suffix, wl::Sgb5(kEpsilon, metric, clause));
    }
    const std::string suffix = std::string("_") + MetricTag(metric);
    Register("Table2/SGB2" + suffix, wl::Sgb2(kEpsilon, metric));
    Register("Table2/SGB4" + suffix, wl::Sgb4(kEpsilon, metric));
    Register("Table2/SGB6" + suffix, wl::Sgb6(kEpsilon, metric));
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
