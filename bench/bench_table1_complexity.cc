// Table 1: SGB-All complexity per algorithm tier x ON-OVERLAP clause
// (L∞ distance):
//
//                 JOIN-ANY      ELIMINATE     FORM-NEW-GROUP
//   All-Pairs     O(n^2)        O(n^2)        O(n^3)
//   Bounds-Check  O(n|G|)       O(n|G|)       O(mn|G|)
//   Index         O(n log|G|)   O(n log|G|)   O(mn log|G|)
//
// This harness validates the *growth* empirically: it times each cell at
// doubling input sizes and reports the log2 runtime ratio per doubling
// ("slope": ~2.0 for quadratic, ~1.0 for near-linear; |G| is held roughly
// proportional to n by fixing ε on uniform data).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/sgb_all.h"
#include "obs/metrics.h"

namespace {

using sgb::ScopedTimer;
using sgb::bench::Scaled;
using sgb::bench::UniformPoints;
using sgb::core::OverlapClause;
using sgb::core::SgbAllAlgorithm;
using sgb::core::SgbAllOptions;

double TimeRun(const std::vector<sgb::geom::Point>& pts,
               SgbAllAlgorithm algorithm, OverlapClause clause) {
  SgbAllOptions options;
  options.epsilon = 0.05;  // on [0,1]^2 uniform data: many groups, |G| ~ n
  options.metric = sgb::geom::Metric::kLInf;
  options.algorithm = algorithm;
  options.on_overlap = clause;
  // Per-run wall times also land in the registry histogram, so the JSON
  // snapshot carries the full latency distribution alongside the table.
  ScopedTimer<sgb::obs::Histogram> timer(
      &sgb::obs::MetricsRegistry::Global().GetHistogram(
          "bench.table1.run_us"));
  auto result = sgb::core::SgbAll(pts, options);
  const double seconds = timer.ElapsedSeconds();
  if (!result.ok()) std::fprintf(stderr, "error: %s\n",
                                 result.status().ToString().c_str());
  return seconds;
}

}  // namespace

int main() {
  const std::vector<size_t> sizes = {Scaled(1000), Scaled(2000),
                                     Scaled(4000), Scaled(8000)};
  const std::pair<const char*, SgbAllAlgorithm> algos[] = {
      {"All-Pairs", SgbAllAlgorithm::kAllPairs},
      {"Bounds-Checking", SgbAllAlgorithm::kBoundsChecking},
      {"on-the-fly Index", SgbAllAlgorithm::kIndexed},
  };
  const std::pair<const char*, OverlapClause> clauses[] = {
      {"JOIN-ANY", OverlapClause::kJoinAny},
      {"ELIMINATE", OverlapClause::kEliminate},
      {"FORM-NEW-GROUP", OverlapClause::kFormNewGroup},
  };

  std::printf("Table 1 reproduction: SGB-All runtime growth (L-inf)\n");
  std::printf("sizes:");
  for (const size_t n : sizes) std::printf(" %zu", n);
  std::printf("  (slope = log2 runtime ratio per size doubling)\n\n");
  std::printf("%-18s %-16s %12s %12s %12s %12s %8s\n", "algorithm", "clause",
              "t(n1) ms", "t(n2) ms", "t(n3) ms", "t(n4) ms", "slope");

  for (const auto& [algo_name, algorithm] : algos) {
    for (const auto& [clause_name, clause] : clauses) {
      std::vector<double> times;
      for (const size_t n : sizes) {
        const auto pts = UniformPoints(n, 10.0, 77);
        times.push_back(TimeRun(pts, algorithm, clause));
      }
      // Average slope over the last doublings (the first is noisy).
      double slope_sum = 0;
      int slope_count = 0;
      for (size_t i = 1; i < times.size(); ++i) {
        if (times[i - 1] <= 0) continue;
        slope_sum += std::log2(times[i] / times[i - 1]);
        ++slope_count;
      }
      const double slope = slope_count > 0 ? slope_sum / slope_count : 0.0;
      std::printf("%-18s %-16s %12.2f %12.2f %12.2f %12.2f %8.2f\n",
                  algo_name, clause_name, times[0] * 1e3, times[1] * 1e3,
                  times[2] * 1e3, times[3] * 1e3, slope);
    }
  }
  std::printf(
      "\nexpected slopes: All-Pairs ~2 (n^2); Bounds-Checking ~2 when "
      "|G| grows with n (n|G|); Index ~1 (n log|G|).\n");
  sgb::bench::ExportMetricsSnapshot("bench_table1_complexity");
  return 0;
}
