#ifndef SGB_BENCH_BENCH_COMMON_H_
#define SGB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "geom/point.h"
#include "obs/metrics.h"

namespace sgb::bench {

/// Global size multiplier for every benchmark workload: the paper's runs
/// use dbgen-scale datasets (0.5M-90M rows) on a dedicated Xeon; these
/// harnesses default to laptop-scale sizes that preserve the curves'
/// shapes. Set SGB_BENCH_SCALE=4 (etc.) to grow every dataset 4x.
inline double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("SGB_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * BenchScale());
}

/// Uniform 2-D points in [0, extent]^2 — the stand-in for the normalized
/// TPC-H grouping-attribute pairs of the ε-sweep experiments.
inline std::vector<geom::Point> UniformPoints(size_t n, double extent = 1.0,
                                              uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.NextUniform(0, extent), rng.NextUniform(0, extent)});
  }
  return pts;
}

/// Skewed 2-D points: a Gaussian-mixture of `hotspots` dense clusters over
/// [0, extent]^2 plus 5% uniform background. This mirrors the value skew of
/// the paper's TPC-H grouping attributes (and of real check-in data):
/// groups are both numerous and heavily populated, which is the regime
/// where the filter-refine tiers separate (Figures 9-10).
inline std::vector<geom::Point> SkewedPoints(size_t n, double extent = 40.0,
                                             size_t hotspots = 400,
                                             double stddev = 0.5,
                                             uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<geom::Point> centers;
  centers.reserve(hotspots);
  for (size_t i = 0; i < hotspots; ++i) {
    centers.push_back(
        {rng.NextUniform(0, extent), rng.NextUniform(0, extent)});
  }
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.05) {
      pts.push_back(
          {rng.NextUniform(0, extent), rng.NextUniform(0, extent)});
      continue;
    }
    const geom::Point& c = centers[rng.NextBounded(hotspots)];
    pts.push_back(
        {rng.NextGaussian(c.x, stddev), rng.NextGaussian(c.y, stddev)});
  }
  return pts;
}

/// Emits the global MetricsRegistry as one machine-readable JSON line so
/// runs are diffable across PRs. The line lands on stdout tagged with the
/// driver name:
///
///   SGB_METRICS {"driver":"bench_fig9","metrics":{...}}
///
/// or, when SGB_BENCH_METRICS_JSON names a file, the bare snapshot object
/// is written there instead ("-" selects stdout explicitly). Call once at
/// the end of main().
inline void ExportMetricsSnapshot(const char* driver) {
  const std::string json =
      sgb::obs::MetricsRegistry::Global().Snapshot().ToJson();
  const char* path = std::getenv("SGB_BENCH_METRICS_JSON");
  if (path != nullptr && std::string(path) != "-") {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "SGB_BENCH_METRICS_JSON: cannot open %s\n", path);
      return;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    return;
  }
  std::printf("SGB_METRICS {\"driver\":\"%s\",\"metrics\":%s}\n", driver,
              json.c_str());
}

}  // namespace sgb::bench

#endif  // SGB_BENCH_BENCH_COMMON_H_
