// Figure 11: SGB vs. standalone clustering algorithms on social check-in
// data (a: Brightkite, b: Gowalla), data size growing, ε = 0.2,
// K-means with K = 20 and K = 40.
//
// Paper result: the SGB operators beat DBSCAN / BIRCH / K-means by 1-3
// orders of magnitude because they group in a single pass while the
// clustering algorithms scan the data repeatedly.
//
// Substitution (DESIGN.md): the SNAP datasets are replaced by synthetic
// Zipf-weighted Gaussian-mixture check-in clouds with dataset-specific
// hotspot shapes; sizes {0.5M, 1M, ..., 3M} map to Scaled({5k..30k}).

#include <map>

#include "bench_common.h"
#include "cluster/birch.h"
#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "workload/checkin.h"

namespace {

using sgb::bench::Scaled;
using sgb::core::OverlapClause;
using sgb::core::SgbAllAlgorithm;
using sgb::core::SgbAllOptions;
using sgb::core::SgbAnyOptions;
using sgb::geom::Point;

constexpr double kEpsilon = 0.2;

const std::vector<Point>& Dataset(bool brightkite, int64_t size_step) {
  static auto* cache = new std::map<std::pair<bool, int64_t>,
                                    std::vector<Point>>();
  const auto key = std::make_pair(brightkite, size_step);
  auto it = cache->find(key);
  if (it == cache->end()) {
    const size_t n = Scaled(5000) * static_cast<size_t>(size_step);
    const auto config = brightkite ? sgb::workload::BrightkiteLike(n)
                                   : sgb::workload::GowallaLike(n);
    it = cache->emplace(key, sgb::workload::GenerateCheckins(config)).first;
  }
  return it->second;
}

void BM_SgbAllCheckin(benchmark::State& state, bool brightkite,
                      OverlapClause clause) {
  const auto& pts = Dataset(brightkite, state.range(0));
  SgbAllOptions options;
  options.epsilon = kEpsilon;
  options.on_overlap = clause;
  options.algorithm = SgbAllAlgorithm::kIndexed;
  for (auto _ : state) {
    auto result = sgb::core::SgbAll(pts, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(pts.size());
}

void BM_SgbAnyCheckin(benchmark::State& state, bool brightkite) {
  const auto& pts = Dataset(brightkite, state.range(0));
  SgbAnyOptions options;
  options.epsilon = kEpsilon;
  for (auto _ : state) {
    auto result = sgb::core::SgbAny(pts, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(pts.size());
}

void BM_Dbscan(benchmark::State& state, bool brightkite) {
  const auto& pts = Dataset(brightkite, state.range(0));
  sgb::cluster::DbscanOptions options;
  options.epsilon = kEpsilon;
  options.min_points = 4;
  options.use_index = true;  // the paper's R-tree DBSCAN baseline
  for (auto _ : state) {
    auto result = sgb::cluster::Dbscan(pts, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(pts.size());
}

void BM_Birch(benchmark::State& state, bool brightkite) {
  const auto& pts = Dataset(brightkite, state.range(0));
  sgb::cluster::BirchOptions options;
  options.threshold = kEpsilon;
  for (auto _ : state) {
    auto result = sgb::cluster::Birch(pts, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(pts.size());
}

void BM_KMeans(benchmark::State& state, bool brightkite, size_t k) {
  const auto& pts = Dataset(brightkite, state.range(0));
  sgb::cluster::KMeansOptions options;
  options.k = k;
  options.max_iterations = 50;
  for (auto _ : state) {
    auto result = sgb::cluster::KMeans(pts, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(pts.size());
}

void RegisterDataset(const std::string& figure, bool brightkite) {
  auto add = [&figure](const std::string& series, auto&& fn) {
    auto* b = benchmark::RegisterBenchmark((figure + "/" + series).c_str(),
                                           std::forward<decltype(fn)>(fn));
    b->DenseRange(1, 6, 1)->Unit(benchmark::kMillisecond);
  };
  add("DBSCAN", [brightkite](benchmark::State& s) { BM_Dbscan(s, brightkite); });
  add("BIRCH", [brightkite](benchmark::State& s) { BM_Birch(s, brightkite); });
  add("KMeans40",
      [brightkite](benchmark::State& s) { BM_KMeans(s, brightkite, 40); });
  add("KMeans20",
      [brightkite](benchmark::State& s) { BM_KMeans(s, brightkite, 20); });
  add("SGBAllFormNew", [brightkite](benchmark::State& s) {
    BM_SgbAllCheckin(s, brightkite, OverlapClause::kFormNewGroup);
  });
  add("SGBAllEliminate", [brightkite](benchmark::State& s) {
    BM_SgbAllCheckin(s, brightkite, OverlapClause::kEliminate);
  });
  add("SGBAllJoinAny", [brightkite](benchmark::State& s) {
    BM_SgbAllCheckin(s, brightkite, OverlapClause::kJoinAny);
  });
  add("SGBAny",
      [brightkite](benchmark::State& s) { BM_SgbAnyCheckin(s, brightkite); });
}

}  // namespace

int main(int argc, char** argv) {
  RegisterDataset("Fig11a_Brightkite", true);
  RegisterDataset("Fig11b_Gowalla", false);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
