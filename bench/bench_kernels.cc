// Microbenchmark for the geom block kernels: pairs/second of the scalar
// reference loop vs the portable auto-vectorized variant (and the AVX2
// variant when compiled in), across block sizes and match selectivities.
//
// This is the PR-gate evidence for the vectorization layer: the portable
// kernel must sustain >= 2x the scalar loop's pairs/sec at the bench-smoke
// config. Each variant's throughput lands in the registry as
// bench.kernels.<metric>.<variant>.pairs_per_sec (best cell), plus
// bench.kernels.<metric>.portable_speedup for the checked-in baseline.
//
// The recorded speedup compares the two variants at the match-heavy
// representative cell (block=256, eps=0.5, ~half the points match). That is
// the regime the SGB operators actually run the kernels in — candidate-group
// member scans and grid-cell scans where most points pass — and where the
// scalar loop's per-point branch mispredicts. At filter-heavy selectivity
// (eps=0.1) the scalar branch is predicted-not-taken and nearly free, so
// the gap narrows; both regimes are printed and exported for inspection.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "geom/kernels.h"
#include "obs/metrics.h"

namespace {

using sgb::Stopwatch;
using sgb::bench::Scaled;
using sgb::bench::UniformPoints;
using sgb::geom::KernelMaskWords;

using SimilarBlockFn = size_t (*)(double, double, const double*,
                                  const double*, size_t, double, uint64_t*);

struct Variant {
  const char* name;
  SimilarBlockFn l2;
  SimilarBlockFn linf;
};

/// Sustained pairs/second of `fn` scanning `n`-point blocks. The column
/// data stays L1/L2-resident (the production access pattern: group members
/// and grid cells are scanned repeatedly), queries rotate so the branch
/// predictor cannot learn one mask.
double MeasurePairsPerSec(SimilarBlockFn fn, const std::vector<double>& xs,
                          const std::vector<double>& ys, size_t n,
                          double threshold, size_t target_pairs) {
  std::vector<uint64_t> mask(KernelMaskWords(n));
  const size_t calls = std::max<size_t>(target_pairs / n, 1);
  size_t sink = 0;
  // Best-of-3: a single short timing (smoke scale) is dominated by scheduler
  // noise; the max over repetitions is the steady-state throughput.
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    for (size_t c = 0; c < calls; ++c) {
      const size_t q = (c * 7) % n;
      sink += fn(xs[q], ys[q], xs.data(), ys.data(), n, threshold,
                 mask.data());
    }
    const double seconds = watch.ElapsedSeconds();
    if (seconds > 0) {
      best = std::max(best, static_cast<double>(calls * n) / seconds);
    }
  }
  // Keep the kernel results observable so the loop cannot be elided.
  volatile size_t observed = sink;
  (void)observed;
  return best;
}

}  // namespace

int main() {
  auto& registry = sgb::obs::MetricsRegistry::Global();
  // Pair budget per (variant, metric, block size, selectivity) repetition;
  // CI smoke runs shrink it via SGB_BENCH_SCALE, floored so even smoke
  // timings stay above scheduler-noise granularity.
  const size_t target_pairs = std::max<size_t>(Scaled(50'000'000), 4'000'000);

  std::vector<Variant> variants = {
      {"scalar", &sgb::geom::SimilarBlockL2Scalar,
       &sgb::geom::SimilarBlockLInfScalar},
      {"portable", &sgb::geom::SimilarBlockL2Portable,
       &sgb::geom::SimilarBlockLInfPortable},
  };
#if defined(SGB_HAVE_AVX2)
  variants.push_back({"avx2", &sgb::geom::SimilarBlockL2Avx2,
                      &sgb::geom::SimilarBlockLInfAvx2});
#endif

  const size_t block_sizes[] = {64, 256, 2048};
  // ε on [0,1]^2 uniform data: ~3% matches (filter-heavy) and ~half
  // matches (match-heavy) — mask writing cost differs between them.
  const double epsilons[] = {0.1, 0.5};
  // The cell the checked-in speedup baseline is taken at (see header).
  const size_t kRepBlock = 256;
  const double kRepEps = 0.5;

  std::printf("Block-kernel throughput (active dispatch variant: %s)\n",
              sgb::geom::ActiveKernelVariant());
  std::printf("%-9s %-5s %7s %6s %16s\n", "variant", "metric", "block",
              "eps", "pairs/sec");

  // (metric, variant) -> rate at the representative cell.
  std::map<std::pair<std::string, std::string>, double> rep_rate;

  for (const char* metric : {"l2", "linf"}) {
    const bool is_l2 = std::string(metric) == "l2";
    for (const Variant& v : variants) {
      double best = 0.0;
      for (const size_t n : block_sizes) {
        const auto pts = UniformPoints(n, 1.0, 1234);
        std::vector<double> xs, ys;
        for (const auto& p : pts) {
          xs.push_back(p.x);
          ys.push_back(p.y);
        }
        for (const double eps : epsilons) {
          const double rate = MeasurePairsPerSec(
              is_l2 ? v.l2 : v.linf, xs, ys, n,
              is_l2 ? eps * eps : eps, target_pairs);
          best = std::max(best, rate);
          if (n == kRepBlock && eps == kRepEps) {
            rep_rate[{metric, v.name}] = rate;
          }
          std::printf("%-9s %-5s %7zu %6.2f %16.3e\n", v.name, metric, n,
                      eps, rate);
        }
      }
      registry
          .GetGauge(std::string("bench.kernels.") + metric + "." + v.name +
                    ".pairs_per_sec")
          .Set(best);
    }
  }

  for (const char* metric : {"l2", "linf"}) {
    const double scalar = rep_rate[{metric, "scalar"}];
    const double portable = rep_rate[{metric, "portable"}];
    const double speedup = scalar > 0 ? portable / scalar : 0.0;
    registry.GetGauge(std::string("bench.kernels.") + metric +
                      ".portable_speedup")
        .Set(speedup);
    std::printf(
        "%s portable speedup over scalar (block=%zu eps=%.1f): %.2fx\n",
        metric, kRepBlock, kRepEps, speedup);
  }

  sgb::bench::ExportMetricsSnapshot("bench_kernels");
  return 0;
}
