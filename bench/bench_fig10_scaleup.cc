// Figure 10: the effect of the data size (TPC-H scale factor) on runtime,
// ε fixed to 0.2.
//  a-c: SGB-All {JOIN-ANY, ELIMINATE, FORM-NEW-GROUP}, Bounds-Checking vs
//       on-the-fly Index, SF 1..60 (All-Pairs omitted, as in the paper:
//       its runtime grows quadratically).
//  d:   SGB-Any, All-Pairs vs on-the-fly Index, SF 1..32.
//
// Paper setup: SGB1's grouping attributes (account balance x total spend)
// at dbgen scale. Here SF maps to Scaled(500) x SF skewed attribute pairs
// (hotspot mixture mirroring TPC-H value skew), so the curve
// shapes — linear-ish index growth, superlinear bounds-checking growth,
// quadratic All-Pairs growth — are preserved.

#include <map>

#include "bench_common.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"

namespace {

using sgb::bench::Scaled;

using sgb::core::OverlapClause;
using sgb::core::SgbAllAlgorithm;
using sgb::core::SgbAllOptions;
using sgb::core::SgbAnyAlgorithm;
using sgb::core::SgbAnyOptions;

constexpr double kEpsilon = 0.2;

const std::vector<sgb::geom::Point>& DatasetForSf(int64_t sf) {
  static auto* cache =
      new std::map<int64_t, std::vector<sgb::geom::Point>>();
  auto it = cache->find(sf);
  if (it == cache->end()) {
    it = cache
             ->emplace(sf, sgb::bench::SkewedPoints(
                               Scaled(500) * static_cast<size_t>(sf),
                               /*extent=*/40.0, /*hotspots=*/400,
                               /*stddev=*/0.5,
                               /*seed=*/1000 + static_cast<uint64_t>(sf)))
             .first;
  }
  return it->second;
}

void BM_SgbAllScale(benchmark::State& state, OverlapClause clause,
                    SgbAllAlgorithm algorithm, int dop = 1) {
  const int64_t sf = state.range(0);
  const auto& pts = DatasetForSf(sf);
  SgbAllOptions options;
  options.epsilon = kEpsilon;
  options.metric = sgb::geom::Metric::kL2;
  options.on_overlap = clause;
  options.algorithm = algorithm;
  options.degree_of_parallelism = dop;
  size_t groups = 0;
  sgb::core::SgbAllStats stats;
  for (auto _ : state) {
    stats = {};
    auto result = sgb::core::SgbAll(pts, options, &stats);
    benchmark::DoNotOptimize(result);
    groups = result.value().num_groups;
  }
  state.counters["rows"] = static_cast<double>(pts.size());
  state.counters["groups"] = static_cast<double>(groups);
  state.counters["dist_comps"] =
      static_cast<double>(stats.distance_computations);
}

void BM_SgbAnyScale(benchmark::State& state, SgbAnyAlgorithm algorithm,
                    int dop = 1) {
  const int64_t sf = state.range(0);
  const auto& pts = DatasetForSf(sf);
  SgbAnyOptions options;
  options.epsilon = kEpsilon;
  options.metric = sgb::geom::Metric::kL2;
  options.algorithm = algorithm;
  options.degree_of_parallelism = dop;
  size_t groups = 0;
  sgb::core::SgbAnyStats stats;
  for (auto _ : state) {
    stats = {};
    auto result = sgb::core::SgbAny(pts, options, &stats);
    benchmark::DoNotOptimize(result);
    groups = result.value().num_groups;
  }
  state.counters["rows"] = static_cast<double>(pts.size());
  state.counters["groups"] = static_cast<double>(groups);
  state.counters["dist_comps"] =
      static_cast<double>(stats.distance_computations);
}

void RegisterAll() {
  const std::pair<const char*, OverlapClause> figures[] = {
      {"Fig10a_JoinAny", OverlapClause::kJoinAny},
      {"Fig10b_Eliminate", OverlapClause::kEliminate},
      {"Fig10c_FormNewGroup", OverlapClause::kFormNewGroup},
  };
  const std::pair<const char*, SgbAllAlgorithm> algos[] = {
      {"BoundsChecking", SgbAllAlgorithm::kBoundsChecking},
      {"Index", SgbAllAlgorithm::kIndexed},
  };
  const std::vector<int64_t> sf_all = {1, 2, 4, 8, 16, 32, 60};
  const std::vector<int64_t> sf_any = {1, 2, 4, 8, 16, 32};

  for (const auto& [figure, clause] : figures) {
    for (const auto& [name, algorithm] : algos) {
      auto* b = benchmark::RegisterBenchmark(
          (std::string(figure) + "/" + name).c_str(),
          [clause = clause, algorithm = algorithm](benchmark::State& state) {
            BM_SgbAllScale(state, clause, algorithm);
          });
      for (const int64_t sf : sf_all) b->Arg(sf);
      b->Unit(benchmark::kMillisecond);
    }
  }
  const std::pair<const char*, SgbAnyAlgorithm> any_algos[] = {
      {"AllPairs", SgbAnyAlgorithm::kAllPairs},
      {"Index", SgbAnyAlgorithm::kIndexed},
  };
  for (const auto& [name, algorithm] : any_algos) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig10d_Any/") + name).c_str(),
        [algorithm = algorithm](benchmark::State& state) {
          BM_SgbAnyScale(state, algorithm);
        });
    for (const int64_t sf : sf_any) b->Arg(sf);
    b->Unit(benchmark::kMillisecond);
  }

  // Parallel dop sweep (docs/PARALLELISM.md): fixed data size, dop
  // {1, 2, 4, 8}. SF 200 ~ Scaled(100k) rows, so at the default bench
  // scale this is the n=100k speedup measurement; serial dop=1 is the
  // baseline the speedup is computed against. Results are identical to the
  // serial runs — only the wall time changes.
  const std::vector<int64_t> dops = {1, 2, 4, 8};
  {
    auto* b = benchmark::RegisterBenchmark(
        "Fig10p_AllParallel/Index",
        [](benchmark::State& state) {
          BM_SgbAllScale(state, OverlapClause::kJoinAny,
                         SgbAllAlgorithm::kIndexed,
                         static_cast<int>(state.range(1)));
        });
    for (const int64_t dop : dops) b->Args({200, dop});
    b->ArgNames({"sf", "dop"});
    b->Unit(benchmark::kMillisecond);
  }
  {
    auto* b = benchmark::RegisterBenchmark(
        "Fig10p_AnyParallel/Index",
        [](benchmark::State& state) {
          BM_SgbAnyScale(state, SgbAnyAlgorithm::kIndexed,
                         static_cast<int>(state.range(1)));
        });
    for (const int64_t dop : dops) b->Args({200, dop});
    b->ArgNames({"sf", "dop"});
    b->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sgb::bench::ExportMetricsSnapshot("bench_fig10_scaleup");
  return 0;
}
