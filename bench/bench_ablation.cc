// Ablation benches for the design choices DESIGN.md calls out:
//  1. Spatial access method for ε-window queries (SGB-Any's inner loop):
//     R-tree vs. uniform grid vs. linear scan, on uniform and clustered
//     (check-in-like) data.
//  2. R-tree node capacity (Guttman's M) for the SGB-All Groups_IX.
//  3. Hull-refinement cost: SGB-All bounds-checking under L2 (hull test
//     active) vs. L∞ (rectangle test exact) on identical data.

#include <map>

#include "bench_common.h"
#include "core/sgb_all.h"
#include "index/grid_index.h"
#include "index/rtree.h"
#include "workload/checkin.h"

namespace {

using sgb::bench::Scaled;
using sgb::bench::UniformPoints;
using sgb::geom::Point;
using sgb::geom::Rect;

constexpr double kEpsilon = 0.2;

const std::vector<Point>& Data(bool clustered) {
  static auto* cache = new std::map<bool, std::vector<Point>>();
  auto it = cache->find(clustered);
  if (it == cache->end()) {
    const size_t n = Scaled(20000);
    if (clustered) {
      it = cache
               ->emplace(true, sgb::workload::GenerateCheckins(
                                   sgb::workload::BrightkiteLike(n)))
               .first;
    } else {
      it = cache->emplace(false, UniformPoints(n, 50.0)).first;
    }
  }
  return it->second;
}

/// Streaming ε-neighbour queries, the SGB-Any access pattern: query the
/// window around each point, then insert it.
void BM_WindowQueriesRTree(benchmark::State& state, bool clustered) {
  const auto& pts = Data(clustered);
  size_t hits = 0;
  for (auto _ : state) {
    sgb::index::RTree tree;
    hits = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Search(Rect::Around(pts[i], kEpsilon),
                  [&hits](const Rect&, uint64_t) { ++hits; });
      tree.Insert(pts[i], i);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["pairs"] = static_cast<double>(hits);
}

void BM_WindowQueriesGrid(benchmark::State& state, bool clustered) {
  const auto& pts = Data(clustered);
  size_t hits = 0;
  for (auto _ : state) {
    sgb::index::GridIndex grid(kEpsilon);
    hits = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      grid.Search(Rect::Around(pts[i], kEpsilon),
                  [&hits](const Point&, uint64_t) { ++hits; });
      grid.Insert(pts[i], i);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["pairs"] = static_cast<double>(hits);
}

void BM_WindowQueriesLinear(benchmark::State& state, bool clustered) {
  const auto& pts = Data(clustered);
  // Linear scan is quadratic: run it on a prefix and report scaled cost.
  const size_t n = std::min<size_t>(pts.size(), Scaled(4000));
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (size_t i = 0; i < n; ++i) {
      const Rect window = Rect::Around(pts[i], kEpsilon);
      for (size_t j = 0; j < i; ++j) {
        if (window.Contains(pts[j])) ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["rows"] = static_cast<double>(n);
}

void BM_RTreeCapacity(benchmark::State& state) {
  const auto& pts = Data(/*clustered=*/true);
  const size_t capacity = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    sgb::index::RTree tree(capacity);
    size_t hits = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Search(Rect::Around(pts[i], kEpsilon),
                  [&hits](const Rect&, uint64_t) { ++hits; });
      tree.Insert(pts[i], i);
    }
    benchmark::DoNotOptimize(hits);
  }
}

void BM_HullRefinementCost(benchmark::State& state, bool use_l2) {
  const auto& pts = Data(/*clustered=*/true);
  sgb::core::SgbAllOptions options;
  options.epsilon = kEpsilon;
  options.metric =
      use_l2 ? sgb::geom::Metric::kL2 : sgb::geom::Metric::kLInf;
  options.algorithm = sgb::core::SgbAllAlgorithm::kIndexed;
  sgb::core::SgbAllStats last;
  for (auto _ : state) {
    sgb::core::SgbAllStats stats;  // per-run, not accumulated
    auto result = sgb::core::SgbAll(pts, options, &stats);
    benchmark::DoNotOptimize(result);
    last = stats;
  }
  state.counters["hull_tests"] = static_cast<double>(last.hull_tests);
  state.counters["distance_computations"] =
      static_cast<double>(last.distance_computations);
}

}  // namespace

int main(int argc, char** argv) {
  for (const bool clustered : {false, true}) {
    const std::string tag = clustered ? "Clustered" : "Uniform";
    benchmark::RegisterBenchmark(
        ("Ablation_Index/RTree/" + tag).c_str(),
        [clustered](benchmark::State& s) {
          BM_WindowQueriesRTree(s, clustered);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Ablation_Index/Grid/" + tag).c_str(),
        [clustered](benchmark::State& s) {
          BM_WindowQueriesGrid(s, clustered);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Ablation_Index/LinearScanPrefix/" + tag).c_str(),
        [clustered](benchmark::State& s) {
          BM_WindowQueriesLinear(s, clustered);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("Ablation_RTreeCapacity", BM_RTreeCapacity)
      ->Arg(4)
      ->Arg(8)
      ->Arg(16)
      ->Arg(32)
      ->Arg(64)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Ablation_Hull/L2",
                               [](benchmark::State& s) {
                                 BM_HullRefinementCost(s, true);
                               })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Ablation_Hull/LInf",
                               [](benchmark::State& s) {
                                 BM_HullRefinementCost(s, false);
                               })
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
