// Figure 9: the effect of the similarity threshold ε (0.1 .. 0.9) on query
// runtime for the SGB-All variants (a: JOIN-ANY, b: ELIMINATE,
// c: FORM-NEW-GROUP) and SGB-Any (d), each under All-Pairs /
// Bounds-Checking / on-the-fly Index.
//
// Paper setup: 0.5M records, L2, runtimes on log scale; the index tier wins
// by ~2 orders of magnitude over All-Pairs and stays flat across ε.
// Here: Scaled(20000) uniform points in [0,1]^2 (SGB_BENCH_SCALE to grow).

#include "bench_common.h"
#include "core/sgb_all.h"
#include "core/sgb_any.h"

namespace {

using sgb::bench::Scaled;
using sgb::bench::SkewedPoints;
using sgb::core::OverlapClause;
using sgb::core::SgbAllAlgorithm;
using sgb::core::SgbAllOptions;
using sgb::core::SgbAnyAlgorithm;
using sgb::core::SgbAnyOptions;

const std::vector<sgb::geom::Point>& Dataset() {
  static const auto* pts =
      new std::vector<sgb::geom::Point>(SkewedPoints(Scaled(20000)));
  return *pts;
}

void BM_SgbAllEpsilon(benchmark::State& state, OverlapClause clause,
                      SgbAllAlgorithm algorithm) {
  const double epsilon = static_cast<double>(state.range(0)) / 10.0;
  SgbAllOptions options;
  options.epsilon = epsilon;
  options.metric = sgb::geom::Metric::kL2;
  options.on_overlap = clause;
  options.algorithm = algorithm;
  size_t groups = 0;
  sgb::core::SgbAllStats stats;
  for (auto _ : state) {
    stats = {};
    auto result = sgb::core::SgbAll(Dataset(), options, &stats);
    benchmark::DoNotOptimize(result);
    groups = result.value().num_groups;
  }
  state.counters["groups"] = static_cast<double>(groups);
  state.counters["eps"] = epsilon;
  state.counters["dist_comps"] =
      static_cast<double>(stats.distance_computations);
}

void BM_SgbAnyEpsilon(benchmark::State& state, SgbAnyAlgorithm algorithm) {
  const double epsilon = static_cast<double>(state.range(0)) / 10.0;
  SgbAnyOptions options;
  options.epsilon = epsilon;
  options.metric = sgb::geom::Metric::kL2;
  options.algorithm = algorithm;
  size_t groups = 0;
  sgb::core::SgbAnyStats stats;
  for (auto _ : state) {
    stats = {};
    auto result = sgb::core::SgbAny(Dataset(), options, &stats);
    benchmark::DoNotOptimize(result);
    groups = result.value().num_groups;
  }
  state.counters["groups"] = static_cast<double>(groups);
  state.counters["eps"] = epsilon;
  state.counters["dist_comps"] =
      static_cast<double>(stats.distance_computations);
}

void RegisterAll() {
  struct ClauseRow {
    const char* figure;
    OverlapClause clause;
  };
  const ClauseRow rows[] = {
      {"Fig9a_JoinAny", OverlapClause::kJoinAny},
      {"Fig9b_Eliminate", OverlapClause::kEliminate},
      {"Fig9c_FormNewGroup", OverlapClause::kFormNewGroup},
  };
  struct AlgoRow {
    const char* name;
    SgbAllAlgorithm algorithm;
  };
  const AlgoRow algos[] = {
      {"AllPairs", SgbAllAlgorithm::kAllPairs},
      {"BoundsChecking", SgbAllAlgorithm::kBoundsChecking},
      {"Index", SgbAllAlgorithm::kIndexed},
  };
  for (const auto& row : rows) {
    for (const auto& algo : algos) {
      auto* b = benchmark::RegisterBenchmark(
          (std::string(row.figure) + "/" + algo.name).c_str(),
          [clause = row.clause, algorithm = algo.algorithm](
              benchmark::State& state) {
            BM_SgbAllEpsilon(state, clause, algorithm);
          });
      b->DenseRange(1, 9, 1)->Unit(benchmark::kMillisecond);
    }
  }
  for (const auto& [name, algorithm] :
       std::initializer_list<std::pair<const char*, SgbAnyAlgorithm>>{
           {"AllPairs", SgbAnyAlgorithm::kAllPairs},
           {"Index", SgbAnyAlgorithm::kIndexed}}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig9d_Any/") + name).c_str(),
        [algorithm = algorithm](benchmark::State& state) {
          BM_SgbAnyEpsilon(state, algorithm);
        });
    b->DenseRange(1, 9, 1)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sgb::bench::ExportMetricsSnapshot("bench_fig9_epsilon");
  return 0;
}
