// Companion-operator bench: the ε-similarity join (SimDB family,
// Section 2 of the paper) — nested-loop vs. R-tree-indexed, and the
// SQL-level formulation through dist_l2(). Not a paper figure; included
// because the join shares the filter-refine machinery the SGB evaluation
// exercises, and its naive/indexed gap mirrors Figures 9-10.

#include "bench_common.h"
#include "core/similarity_join.h"

namespace {

using sgb::bench::Scaled;
using sgb::bench::SkewedPoints;
using sgb::core::SimilarityJoinAlgorithm;

const std::vector<sgb::geom::Point>& Left() {
  static const auto* pts = new std::vector<sgb::geom::Point>(
      SkewedPoints(Scaled(4000), 40.0, 400, 0.5, 77));
  return *pts;
}

const std::vector<sgb::geom::Point>& Right() {
  static const auto* pts = new std::vector<sgb::geom::Point>(
      SkewedPoints(Scaled(4000), 40.0, 400, 0.5, 78));
  return *pts;
}

void BM_Join(benchmark::State& state, SimilarityJoinAlgorithm algorithm) {
  const double epsilon = static_cast<double>(state.range(0)) / 10.0;
  size_t pairs = 0;
  for (auto _ : state) {
    auto result =
        sgb::core::SimilarityJoin(Left(), Right(), epsilon,
                                  sgb::geom::Metric::kL2, algorithm);
    benchmark::DoNotOptimize(result);
    pairs = result.value().size();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_SelfJoin(benchmark::State& state,
                 SimilarityJoinAlgorithm algorithm) {
  const double epsilon = static_cast<double>(state.range(0)) / 10.0;
  size_t pairs = 0;
  for (auto _ : state) {
    auto result = sgb::core::SimilaritySelfJoin(
        Left(), epsilon, sgb::geom::Metric::kL2, algorithm);
    benchmark::DoNotOptimize(result);
    pairs = result.value().size();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("SimJoin/NestedLoop",
                               [](benchmark::State& s) {
                                 BM_Join(s, SimilarityJoinAlgorithm::
                                                kNestedLoop);
                               })
      ->Arg(1)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("SimJoin/Indexed",
                               [](benchmark::State& s) {
                                 BM_Join(s,
                                         SimilarityJoinAlgorithm::kIndexed);
                               })
      ->Arg(1)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("SimSelfJoin/NestedLoop",
                               [](benchmark::State& s) {
                                 BM_SelfJoin(s, SimilarityJoinAlgorithm::
                                                    kNestedLoop);
                               })
      ->Arg(1)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("SimSelfJoin/Indexed",
                               [](benchmark::State& s) {
                                 BM_SelfJoin(
                                     s, SimilarityJoinAlgorithm::kIndexed);
                               })
      ->Arg(1)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
