// Extension experiment (not in the paper, which defers >2-D to future
// work): how the SGB algorithm tiers behave as the dimensionality grows.
// The rectangle filter's selectivity degrades with dimension (the ε-box
// occupies an ever-smaller fraction of the ε-ball: π/4 in 2-D, π/6 in 3-D,
// π²/32 in 4-D), so the L2 member-scan refinement works harder — the
// curse-of-dimensionality effect that motivates the paper's 2-D/3-D scope.

#include <map>
#include <vector>

#include "bench_common.h"
#include "core/sgb_nd.h"

namespace {

using sgb::bench::Scaled;
using sgb::core::SgbAllAlgorithm;
using sgb::core::SgbAllOptions;
using sgb::core::SgbAnyAlgorithm;
using sgb::core::SgbAnyOptions;

template <size_t D>
std::vector<sgb::geom::PointN<D>> Cloud(size_t n, uint64_t seed) {
  sgb::Rng rng(seed);
  // Hotspot mixture matching bench_common::SkewedPoints, lifted to D dims.
  const size_t hotspots = 400;
  std::vector<sgb::geom::PointN<D>> centers(hotspots);
  for (auto& c : centers) {
    for (size_t d = 0; d < D; ++d) c.c[d] = rng.NextUniform(0, 40.0);
  }
  std::vector<sgb::geom::PointN<D>> pts(n);
  for (auto& p : pts) {
    if (rng.NextDouble() < 0.05) {
      for (size_t d = 0; d < D; ++d) p.c[d] = rng.NextUniform(0, 40.0);
      continue;
    }
    const auto& c = centers[rng.NextBounded(hotspots)];
    for (size_t d = 0; d < D; ++d) p.c[d] = rng.NextGaussian(c.c[d], 0.5);
  }
  return pts;
}

template <size_t D>
const std::vector<sgb::geom::PointN<D>>& Dataset() {
  static const auto* pts = new std::vector<sgb::geom::PointN<D>>(
      Cloud<D>(Scaled(10000), 1234 + D));
  return *pts;
}

template <size_t D>
void BM_AllNd(benchmark::State& state, SgbAllAlgorithm algorithm) {
  SgbAllOptions options;
  options.epsilon = static_cast<double>(state.range(0)) / 10.0;
  options.algorithm = algorithm;
  size_t groups = 0;
  for (auto _ : state) {
    auto result = sgb::core::SgbAllNd<D>(
        std::span<const sgb::geom::PointN<D>>(Dataset<D>()), options);
    benchmark::DoNotOptimize(result);
    groups = result.value().num_groups;
  }
  state.counters["groups"] = static_cast<double>(groups);
}

template <size_t D>
void BM_AnyNd(benchmark::State& state, SgbAnyAlgorithm algorithm) {
  SgbAnyOptions options;
  options.epsilon = static_cast<double>(state.range(0)) / 10.0;
  options.algorithm = algorithm;
  size_t groups = 0;
  for (auto _ : state) {
    auto result = sgb::core::SgbAnyNd<D>(
        std::span<const sgb::geom::PointN<D>>(Dataset<D>()), options);
    benchmark::DoNotOptimize(result);
    groups = result.value().num_groups;
  }
  state.counters["groups"] = static_cast<double>(groups);
}

template <size_t D>
void RegisterDim(const std::string& dim) {
  benchmark::RegisterBenchmark(
      ("Nd_All/" + dim + "/AllPairs").c_str(),
      [](benchmark::State& s) { BM_AllNd<D>(s, SgbAllAlgorithm::kAllPairs); })
      ->Arg(2)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      ("Nd_All/" + dim + "/Index").c_str(),
      [](benchmark::State& s) { BM_AllNd<D>(s, SgbAllAlgorithm::kIndexed); })
      ->Arg(2)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      ("Nd_Any/" + dim + "/AllPairs").c_str(),
      [](benchmark::State& s) { BM_AnyNd<D>(s, SgbAnyAlgorithm::kAllPairs); })
      ->Arg(2)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      ("Nd_Any/" + dim + "/Index").c_str(),
      [](benchmark::State& s) { BM_AnyNd<D>(s, SgbAnyAlgorithm::kIndexed); })
      ->Arg(2)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterDim<2>("2d");
  RegisterDim<3>("3d");
  RegisterDim<4>("4d");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
