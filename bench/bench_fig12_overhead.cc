// Figure 12: the overhead of SGB relative to the traditional GROUP BY on
// the full SQL pipeline, data size growing (paper: 1-20 GB; here micro
// scale factors 1..20).
//  a: GB2 vs SGB3 (SGB-All) and SGB4 (SGB-Any) — parts-profit family.
//  b: GB3 vs SGB5 and SGB6 — top-supplier family.
// Plus the buying-power family (GB1 vs SGB1/SGB2) for completeness.
//
// Paper result: JOIN-ANY is on par with (or faster than) plain GROUP BY;
// ELIMINATE / FORM-NEW-GROUP / Any cost ~15/40/20% more.

#include <map>
#include <memory>

#include "bench_common.h"
#include "engine/executor.h"
#include "workload/queries.h"
#include "workload/tpch.h"

namespace {

using sgb::bench::BenchScale;
using sgb::core::OverlapClause;
using sgb::geom::Metric;

constexpr double kEpsilon = 0.2;

const sgb::engine::Database& DbForSf(int64_t sf) {
  static auto* cache =
      new std::map<int64_t, std::unique_ptr<sgb::engine::Database>>();
  auto it = cache->find(sf);
  if (it == cache->end()) {
    sgb::workload::TpchConfig config;
    config.scale_factor = static_cast<double>(sf) * 0.1 * BenchScale();
    auto db = std::make_unique<sgb::engine::Database>();
    sgb::workload::GenerateTpch(config).RegisterAll(db->catalog());
    it = cache->emplace(sf, std::move(db)).first;
  }
  return *it->second;
}

void BM_Query(benchmark::State& state, const std::string& sql) {
  const auto& db = DbForSf(state.range(0));
  size_t rows = 0;
  for (auto _ : state) {
    auto result = db.Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result.value().NumRows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["out_rows"] = static_cast<double>(rows);
}

void Register(const std::string& name, const std::string& sql) {
  auto* b = benchmark::RegisterBenchmark(
      name.c_str(),
      [sql](benchmark::State& state) { BM_Query(state, sql); });
  for (const int64_t sf : {1, 2, 5, 10, 20}) b->Arg(sf);
  b->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  namespace wl = sgb::workload;
  // Figure 12a: parts-profit family.
  Register("Fig12a/GB2", wl::Gb2());
  Register("Fig12a/SGB3_JoinAny",
           wl::Sgb3(kEpsilon, Metric::kL2, OverlapClause::kJoinAny));
  Register("Fig12a/SGB3_Eliminate",
           wl::Sgb3(kEpsilon, Metric::kL2, OverlapClause::kEliminate));
  Register("Fig12a/SGB3_FormNew",
           wl::Sgb3(kEpsilon, Metric::kL2, OverlapClause::kFormNewGroup));
  Register("Fig12a/SGB4_Any", wl::Sgb4(kEpsilon, Metric::kL2));

  // Figure 12b: top-supplier family.
  Register("Fig12b/GB3", wl::Gb3());
  Register("Fig12b/SGB5_JoinAny",
           wl::Sgb5(kEpsilon, Metric::kL2, OverlapClause::kJoinAny));
  Register("Fig12b/SGB5_Eliminate",
           wl::Sgb5(kEpsilon, Metric::kL2, OverlapClause::kEliminate));
  Register("Fig12b/SGB5_FormNew",
           wl::Sgb5(kEpsilon, Metric::kL2, OverlapClause::kFormNewGroup));
  Register("Fig12b/SGB6_Any", wl::Sgb6(kEpsilon, Metric::kL2));

  // Buying-power family (not plotted in the paper's Fig. 12 but part of
  // the same overhead story via Table 2).
  Register("Fig12x/GB1", wl::Gb1());
  Register("Fig12x/SGB1_JoinAny",
           wl::Sgb1(kEpsilon, Metric::kL2, OverlapClause::kJoinAny));
  Register("Fig12x/SGB2_Any", wl::Sgb2(kEpsilon, Metric::kL2));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
