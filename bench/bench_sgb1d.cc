// ICDE 2009 companion experiment: the one-dimensional SGB operators
// (SGB-U / SGB-A / SGB-D) vs. the standard GROUP BY, through the SQL
// pipeline — the original paper's headline result is that similarity
// grouping costs only ~25% over plain grouping.

#include <memory>

#include "bench_common.h"
#include "engine/executor.h"
#include "workload/tpch.h"

namespace {

using sgb::bench::BenchScale;

const sgb::engine::Database& Db() {
  static auto* db = [] {
    sgb::workload::TpchConfig config;
    config.scale_factor = 1.0 * BenchScale();
    auto d = new sgb::engine::Database();
    sgb::workload::GenerateTpch(config).RegisterAll(d->catalog());
    return d;
  }();
  return *db;
}

void BM_Query(benchmark::State& state, const std::string& sql) {
  for (auto _ : state) {
    auto result = Db().Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

void Register(const std::string& name, const std::string& sql) {
  benchmark::RegisterBenchmark(
      name.c_str(), [sql](benchmark::State& state) { BM_Query(state, sql); })
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  Register("Sgb1d/GroupBy_Equality",
           "SELECT count(*), sum(o_totalprice) FROM orders "
           "GROUP BY o_totalprice");
  Register("Sgb1d/SGB_U",
           "SELECT count(*), sum(o_totalprice) FROM orders "
           "GROUP BY o_totalprice MAXIMUM_ELEMENT_SEPARATION 1000");
  Register("Sgb1d/SGB_U_Diameter",
           "SELECT count(*), sum(o_totalprice) FROM orders "
           "GROUP BY o_totalprice MAXIMUM_ELEMENT_SEPARATION 1000 "
           "MAXIMUM_GROUP_DIAMETER 20000");
  Register("Sgb1d/SGB_A",
           "SELECT count(*), avg(o_totalprice) FROM orders "
           "GROUP BY o_totalprice "
           "AROUND (50000, 150000, 300000, 450000)");
  Register("Sgb1d/SGB_A_Limited",
           "SELECT count(*), avg(o_totalprice) FROM orders "
           "GROUP BY o_totalprice AROUND (50000, 150000, 300000, 450000) "
           "MAXIMUM_ELEMENT_SEPARATION 100000");
  Register("Sgb1d/SGB_D",
           "SELECT count(*), max(o_totalprice) FROM orders "
           "GROUP BY o_totalprice DELIMITED BY (100000, 200000, 400000)");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
