// Tier-crossover sweep for the cost-based planner (docs/PLANNER.md):
// uniform point sets at several sizes and epsilons, each SGB tier forced
// in turn and timed, then the cost model's auto choice timed against them.
// A plain GROUP BY strategy sweep (hash vs sort) rides along. Reports the
// full grid as JSON.
//
//   bench_planner [--scale S] [--reps R] [--json PATH]
//
// Exit code is non-zero when, at any grid point, the auto plan is slower
// than the worst forced configuration, or more than 10% (plus a small
// absolute allowance for timer noise on sub-millisecond points) slower
// than the best forced configuration — the acceptance gate the CI
// planner-smoke job runs. The per-tier timings in the report are the
// calibration inputs for the planner's cost constants (docs/PLANNER.md
// "Calibration").

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "obs/query_log.h"

namespace {

using sgb::Rng;
using sgb::engine::Column;
using sgb::engine::Database;
using sgb::engine::DataType;
using sgb::engine::Schema;
using sgb::engine::Table;
using sgb::engine::Value;

double Now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimum wall time of `reps` runs — the min is the least noisy
/// summary for a deterministic single-threaded workload.
double TimeQuery(Database& db, const std::string& sql, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = Now();
    auto result = db.Query(sql);
    const double ms = Now() - t0;
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n",
                   result.status().ToString().c_str(), sql.c_str());
      std::exit(1);
    }
    best = std::min(best, ms);
  }
  return best;
}

/// What the cost model actually picked for the last run of `sql`
/// (the query log's strategy column).
std::string ChosenStrategy(const Database& db, const std::string& sql) {
  std::string strategy;
  for (const auto& e : db.query_log().Entries()) {
    if (e.text == sql) strategy = e.strategy;
  }
  return strategy;
}

Database PointsDb(size_t n, double extent) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(42);
  for (size_t i = 0; i < n; ++i) {
    if (!pts->Append({Value::Double(rng.NextUniform(0, extent)),
                      Value::Double(rng.NextUniform(0, extent))})
             .ok()) {
      std::exit(1);
    }
  }
  db.Register("pts", pts);
  return db;
}

struct GridPoint {
  std::string label;
  std::map<std::string, double> forced_ms;  ///< config -> min wall ms
  double auto_ms = 0;
  std::string chosen;
};

bool Gate(const GridPoint& p, double rel_slack, double abs_slack_ms) {
  double best = std::numeric_limits<double>::infinity();
  double worst = 0;
  for (const auto& [name, ms] : p.forced_ms) {
    best = std::min(best, ms);
    worst = std::max(worst, ms);
  }
  const bool not_worse_than_worst =
      p.auto_ms <= worst * (1.0 + rel_slack) + abs_slack_ms;
  const bool near_best =
      p.auto_ms <= best * (1.0 + rel_slack) + abs_slack_ms;
  if (!not_worse_than_worst || !near_best) {
    std::fprintf(stderr,
                 "GATE FAIL %s: auto=%.3fms (chose %s) best=%.3fms "
                 "worst=%.3fms\n",
                 p.label.c_str(), p.auto_ms, p.chosen.c_str(), best, worst);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  int reps = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scale") == 0) {
      scale = std::stod(next("--scale"));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::stoi(next("--reps"));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next("--json");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<GridPoint> grid;
  bool ok = true;

  // ---- SGB tier crossover ----------------------------------------------
  // Fixed 10x10 extent: epsilon sweeps the density from "almost every
  // point isolated" (indexed tier territory) through mid-density (bounds
  // checking viable) to "few big groups" (where All-Pairs' simplicity can
  // win at small n).
  for (const size_t base_n : {size_t{500}, size_t{2000}, size_t{6000}}) {
    const size_t n = std::max<size_t>(50, static_cast<size_t>(base_n * scale));
    for (const double eps : {0.02, 0.2, 0.8}) {
      for (const char* kind : {"ALL", "ANY"}) {
        Database db = PointsDb(n, 10.0);
        if (!db.Query("ANALYZE pts").ok()) return 1;
        char sql[256];
        std::snprintf(sql, sizeof(sql),
                      "SELECT count(*) FROM pts GROUP BY x, y "
                      "DISTANCE-TO-%s L2 WITHIN %g",
                      kind, eps);

        GridPoint p;
        p.label = std::string("sgb-") + (kind[0] == 'A' && kind[1] == 'L'
                                             ? "all"
                                             : "any") +
                  " n=" + std::to_string(n) + " eps=" + std::to_string(eps);
        const std::vector<const char*> tiers =
            std::strcmp(kind, "ALL") == 0
                ? std::vector<const char*>{"all_pairs", "bounds", "indexed"}
                : std::vector<const char*>{"all_pairs", "indexed"};
        for (const char* tier : tiers) {
          if (!db.Query(std::string("SET sgb_tier = ") + tier).ok()) return 1;
          TimeQuery(db, sql, 1);  // warm the table snapshot
          p.forced_ms[tier] = TimeQuery(db, sql, reps);
        }
        if (!db.Query("SET sgb_tier = auto").ok()) return 1;
        TimeQuery(db, sql, 1);
        p.auto_ms = TimeQuery(db, sql, reps);
        p.chosen = ChosenStrategy(db, sql);
        ok &= Gate(p, 0.10, 2.0);
        grid.push_back(std::move(p));
      }
    }
  }

  // ---- plain GROUP BY strategy crossover -------------------------------
  // Wide extent makes x effectively all-distinct (sort regime); the
  // modulo-style dense-key shape stays in the hash regime.
  for (const size_t base_n : {size_t{2000}, size_t{20000}}) {
    const size_t n = std::max<size_t>(100, static_cast<size_t>(base_n * scale));
    for (const bool dense_keys : {true, false}) {
      Database db;
      auto t = std::make_shared<Table>(Schema({
          Column{"k", DataType::kInt64, ""},
          Column{"v", DataType::kDouble, ""},
      }));
      Rng rng(7);
      const int64_t key_space =
          dense_keys ? std::max<int64_t>(2, static_cast<int64_t>(n) / 50)
                     : std::numeric_limits<int64_t>::max() / 2;
      for (size_t i = 0; i < n; ++i) {
        if (!t->Append({Value::Int(rng.NextInt(0, key_space - 1)),
                        Value::Double(rng.NextDouble())})
                 .ok()) {
          return 1;
        }
      }
      db.Register("t", t);
      if (!db.Query("ANALYZE t").ok()) return 1;
      const std::string sql = "SELECT k, count(*), sum(v) FROM t GROUP BY k";

      GridPoint p;
      p.label = std::string("agg n=") + std::to_string(n) +
                (dense_keys ? " dense-keys" : " distinct-keys");
      for (const char* strategy : {"hash", "sort"}) {
        if (!db.Query(std::string("SET agg_strategy = ") + strategy).ok()) {
          return 1;
        }
        TimeQuery(db, sql, 1);
        p.forced_ms[strategy] = TimeQuery(db, sql, reps);
      }
      if (!db.Query("SET agg_strategy = auto").ok()) return 1;
      TimeQuery(db, sql, 1);
      p.auto_ms = TimeQuery(db, sql, reps);
      p.chosen = ChosenStrategy(db, sql);
      ok &= Gate(p, 0.10, 2.0);
      grid.push_back(std::move(p));
    }
  }

  // ---- report ----------------------------------------------------------
  std::string json = "{\n  \"scale\": " + std::to_string(scale) +
                     ",\n  \"points\": [\n";
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridPoint& p = grid[i];
    json += "    {\"label\": \"" + p.label + "\", \"auto_ms\": " +
            std::to_string(p.auto_ms) + ", \"chosen\": \"" + p.chosen +
            "\", \"forced_ms\": {";
    bool first = true;
    for (const auto& [name, ms] : p.forced_ms) {
      if (!first) json += ", ";
      first = false;
      json += "\"" + std::string(name) + "\": " + std::to_string(ms);
    }
    json += "}}";
    json += i + 1 < grid.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"gate\": \"" + std::string(ok ? "pass" : "fail") +
          "\"\n}\n";
  std::cout << json;
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
  }

  for (const GridPoint& p : grid) {
    double best = std::numeric_limits<double>::infinity();
    std::string best_name;
    for (const auto& [name, ms] : p.forced_ms) {
      if (ms < best) {
        best = ms;
        best_name = name;
      }
    }
    std::fprintf(stderr, "%-36s auto=%8.3fms (%s) best=%8.3fms (%s)\n",
                 p.label.c_str(), p.auto_ms, p.chosen.c_str(), best,
                 best_name.c_str());
  }
  return ok ? 0 : 1;
}
