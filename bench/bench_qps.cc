// Multi-client QPS harness for the server front end (docs/SERVER.md):
// starts an in-process server over the synthetic check-in workload, drives
// it with N concurrent wire clients x M queries each of a mixed read/SGB/
// system-table/prepared-statement workload, and reports throughput and
// latency percentiles (via the obs histogram registry) as JSON.
//
//   bench_qps [--clients N] [--queries M] [--rows R] [--json PATH]
//
// Exit code is non-zero when any client statement fails, when any
// system.query_log row has status `error`, or when a client's result for a
// deterministic query diverges from a single-session replay — so CI can
// gate on the bare exit status (the qps-smoke job does).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/checkin.h"

namespace {

struct BenchQuery {
  std::string sql;
  bool deterministic;  ///< included in the divergence check
};

std::vector<BenchQuery> MixedWorkload() {
  return {
      {"SELECT count(*) FROM checkins", true},
      {"SELECT count(*) FROM checkins WHERE latitude > 40.0", true},
      {"SELECT count(*) FROM checkins GROUP BY latitude, longitude "
       "DISTANCE-TO-ANY L2 WITHIN 0.2",
       true},
      {"SELECT count(*) FROM checkins GROUP BY latitude, longitude "
       "DISTANCE-TO-ALL L2 WITHIN 0.2 ON-OVERLAP ELIMINATE",
       true},
      {"SELECT user_id, count(*) AS visits FROM checkins "
       "GROUP BY user_id ORDER BY visits DESC, user_id LIMIT 5",
       true},
      {"SELECT count(*) FROM system.sessions", false},
      {"SELECT count(*) FROM system.metrics", false},
  };
}

struct ClientOutcome {
  uint64_t ok = 0;
  uint64_t errors = 0;
  // Last result rows per deterministic workload index, for the
  // divergence check against single-session replay.
  std::vector<std::vector<std::vector<std::string>>> results;
};

}  // namespace

int main(int argc, char** argv) {
  size_t clients = 8;
  size_t queries = 200;
  size_t rows = 10000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--clients") == 0) {
      clients = std::stoul(next("--clients"));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      queries = std::stoul(next("--queries"));
    } else if (std::strcmp(argv[i], "--rows") == 0) {
      rows = std::stoul(next("--rows"));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next("--json");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  sgb::engine::Database db;
  db.Register("checkins",
              sgb::workload::GenerateCheckinTable(
                  sgb::workload::BrightkiteLike(rows)));

  sgb::server::ServerOptions options;
  options.tcp = true;
  options.max_sessions = clients + 8;
  sgb::server::Server server(&db, options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const std::vector<BenchQuery> workload = MixedWorkload();
  auto& histogram =
      sgb::obs::MetricsRegistry::Global().GetHistogram("bench.qps_query_us");
  std::vector<ClientOutcome> outcomes(clients);

  sgb::Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientOutcome& outcome = outcomes[c];
      outcome.results.resize(workload.size());
      auto connected =
          sgb::server::Client::ConnectLoopback(server.tcp_port());
      if (!connected.ok()) {
        outcome.errors += queries;
        return;
      }
      sgb::server::Client client = std::move(connected).value();
      // Every client prepares the hottest statement once and executes it
      // through the prepared path, exercising the session plan cache.
      const bool prepared =
          client.Prepare("hot", workload[0].sql).ok();
      for (size_t q = 0; q < queries; ++q) {
        const size_t w = q % workload.size();
        sgb::Stopwatch latency;
        auto result = (w == 0 && prepared)
                          ? client.Execute("hot")
                          : client.Query(workload[w].sql);
        histogram.Record(
            static_cast<uint64_t>(latency.ElapsedMicros()));
        if (result.ok()) {
          ++outcome.ok;
          if (workload[w].deterministic) {
            outcome.results[w] = std::move(result.value().rows);
          }
        } else {
          ++outcome.errors;
          std::fprintf(stderr, "client %zu query failed: %s\n", c,
                       result.status().ToString().c_str());
        }
      }
      (void)client.Quit();
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_ms = wall.ElapsedMillis();

  // Single-session replay is the divergence ground truth: every client's
  // last result for each deterministic query must be bit-identical to a
  // fresh session running the same statement.
  size_t divergences = 0;
  {
    auto replay = sgb::server::Client::ConnectLoopback(server.tcp_port());
    if (!replay.ok()) {
      std::fprintf(stderr, "replay connect failed\n");
      ++divergences;
    } else {
      for (size_t w = 0; w < workload.size(); ++w) {
        if (!workload[w].deterministic) continue;
        auto truth = replay.value().Query(workload[w].sql);
        if (!truth.ok()) {
          std::fprintf(stderr, "replay failed: %s\n", workload[w].sql.c_str());
          ++divergences;
          continue;
        }
        for (size_t c = 0; c < clients; ++c) {
          if (outcomes[c].results[w].empty()) continue;  // client errored out
          if (outcomes[c].results[w] != truth.value().rows) {
            std::fprintf(stderr, "client %zu diverged on: %s\n", c,
                         workload[w].sql.c_str());
            ++divergences;
          }
        }
      }
    }
  }

  uint64_t ok = 0;
  uint64_t errors = 0;
  for (const auto& outcome : outcomes) {
    ok += outcome.ok;
    errors += outcome.errors;
  }
  uint64_t log_error_rows = 0;
  for (const auto& entry : db.query_log().Entries()) {
    if (entry.status == "error") ++log_error_rows;
  }
  server.Stop();

  const double qps =
      elapsed_ms > 0 ? static_cast<double>(ok) / (elapsed_ms / 1000.0) : 0;
  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"clients\": %zu,\n"
      "  \"queries_per_client\": %zu,\n"
      "  \"rows\": %zu,\n"
      "  \"ok\": %llu,\n"
      "  \"errors\": %llu,\n"
      "  \"divergences\": %zu,\n"
      "  \"query_log_error_rows\": %llu,\n"
      "  \"elapsed_ms\": %.1f,\n"
      "  \"qps\": %.1f,\n"
      "  \"p50_us\": %.0f,\n"
      "  \"p99_us\": %.0f\n"
      "}\n",
      clients, queries, rows, static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(errors), divergences,
      static_cast<unsigned long long>(log_error_rows), elapsed_ms, qps,
      histogram.P50(), histogram.P99());
  std::fputs(json, stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
  }
  return (errors == 0 && divergences == 0 && log_error_rows == 0) ? 0 : 1;
}
