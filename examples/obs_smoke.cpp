// Observability smoke driver (docs/OBSERVABILITY.md, CI `obs-smoke` job):
// runs a mixed workload — successes, a timeout, a shed, a plan error, a
// parallel similarity grouping — then exercises every introspection
// surface end to end:
//
//   1. SELECT over system.query_log / system.metrics / system.tables,
//   2. PROFILE on the parallel SGB statement (span tree as rows),
//   3. SET trace = 1 + Database::ExportTrace to Chrome trace-event JSON.
//
// Usage: obs_smoke [trace-output.json]   (default: sgb_trace.json)
//
// Exits non-zero on the first unexpected outcome; CI then validates the
// exported file with `python3 -m json.tool` plus a required-keys check.

#include <cstdio>
#include <memory>
#include <string>

#include "common/random.h"
#include "engine/executor.h"

using sgb::Rng;
using sgb::engine::Column;
using sgb::engine::Database;
using sgb::engine::DataType;
using sgb::engine::Row;
using sgb::engine::Schema;
using sgb::engine::Table;
using sgb::engine::Value;

namespace {

constexpr char kSgbQuery[] =
    "SELECT count(*) FROM pts GROUP BY x, y "
    "DISTANCE-TO-ANY L2 WITHIN 0.4 PARALLEL 4";

bool Fail(const std::string& what) {
  std::fprintf(stderr, "obs_smoke: FAILED: %s\n", what.c_str());
  return false;
}

bool ExpectOk(const sgb::Result<Table>& result, const std::string& what) {
  if (!result.ok()) {
    return Fail(what + ": " + result.status().ToString());
  }
  return true;
}

void PrintTable(const char* title, const Table& table, size_t max_rows) {
  std::printf("-- %s\n", title);
  size_t shown = 0;
  for (const Row& row : table.rows()) {
    if (shown++ >= max_rows) {
      std::printf("  ... (%zu rows total)\n", table.NumRows());
      break;
    }
    std::printf(" ");
    for (const Value& v : row) std::printf(" %s", v.ToString().c_str());
    std::printf("\n");
  }
}

bool Run(const std::string& trace_path) {
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(20260808);
  for (size_t i = 0; i < 20000; ++i) {
    if (!pts->Append({Value::Double(rng.NextUniform(0, 10)),
                      Value::Double(rng.NextUniform(0, 10))})
             .ok()) {
      return Fail("table build");
    }
  }
  db.Register("pts", pts);

  // ---- Mixed workload: ok, timeout, shed, error ------------------------
  if (!ExpectOk(db.Query("SET trace = 1"), "SET trace")) return false;
  if (!ExpectOk(db.Query("SET slow_query_micros = 1"), "SET slow")) {
    return false;
  }
  if (!ExpectOk(db.Query("SELECT count(*) FROM pts"), "count")) return false;
  if (!ExpectOk(db.Query(kSgbQuery), "parallel SGB")) return false;

  db.set_timeout_ms(1);
  if (db.Query(kSgbQuery).ok()) return Fail("timeout did not fire");
  db.set_timeout_ms(0);

  db.set_admission_mode(sgb::engine::AdmissionMode::kShed);
  db.set_admission_budget_bytes(1);
  if (db.Query("SELECT count(*) FROM pts").ok()) {
    return Fail("shed did not fire");
  }
  db.set_admission_mode(sgb::engine::AdmissionMode::kOff);
  db.set_admission_budget_bytes(0);

  if (db.Query("SELECT count(*) FROM no_such_table").ok()) {
    return Fail("plan error did not fire");
  }

  // ---- System tables ---------------------------------------------------
  auto statuses = db.Query(
      "SELECT status, count(*) AS n FROM system.query_log "
      "GROUP BY status ORDER BY status");
  if (!ExpectOk(statuses, "system.query_log GROUP BY status")) return false;
  PrintTable("system.query_log by status", statuses.value(), 10);
  if (statuses.value().NumRows() < 4) {
    return Fail("expected >= 4 distinct statuses (ok/timeout/shed/error)");
  }

  auto slow = db.Query(
      "SELECT query, wall_micros FROM system.query_log WHERE slow = 1");
  if (!ExpectOk(slow, "slow-query filter")) return false;
  if (slow.value().NumRows() == 0) return Fail("no slow-flagged queries");

  auto metrics = db.Query(
      "SELECT name, value FROM system.metrics "
      "WHERE kind = 'counter' AND value > 0");
  if (!ExpectOk(metrics, "system.metrics")) return false;
  if (metrics.value().NumRows() == 0) return Fail("no nonzero counters");

  auto tables = db.Query("SELECT name, kind FROM system.tables ORDER BY name");
  if (!ExpectOk(tables, "system.tables")) return false;
  PrintTable("system.tables", tables.value(), 10);

  // ---- PROFILE ---------------------------------------------------------
  auto profile = db.Query(std::string("PROFILE ") + kSgbQuery);
  if (!ExpectOk(profile, "PROFILE")) return false;
  PrintTable("PROFILE (parallel SGB)", profile.value(), 24);
  bool saw_worker = false;
  for (const Row& row : profile.value().rows()) {
    if (row[3].AsString() == "sgb.worker") saw_worker = true;
  }
  if (!saw_worker) return Fail("PROFILE has no sgb.worker span");

  // ---- Chrome trace export ---------------------------------------------
  if (db.trace_log().event_count() == 0) return Fail("empty trace log");
  sgb::Status status = db.ExportTrace(trace_path);
  if (!status.ok()) return Fail("ExportTrace: " + status.ToString());
  std::printf("-- exported %zu trace events to %s\n",
              db.trace_log().event_count(), trace_path.c_str());
  std::printf("obs_smoke: OK\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "sgb_trace.json";
  return Run(trace_path) ? 0 : 1;
}
