// MANET example (paper Section 5, Example 3, Queries 1 and 2).
//
// A mobile ad-hoc network is a set of devices that communicate directly
// when within radio range, or through gateway devices otherwise.
//  * Query 1 finds the geographic areas covered by each MANET: SGB-Any
//    with the signal range as the similarity threshold, aggregated with
//    ST_Polygon.
//  * Query 2 finds candidate gateway devices: SGB-All with ON-OVERLAP
//    FORM-NEW-GROUP — devices overlapping several cliques land in the
//    freshly formed groups.
//
// Build & run:  ./build/examples/manet

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "engine/executor.h"

namespace {

using sgb::engine::Column;
using sgb::engine::DataType;
using sgb::engine::Schema;
using sgb::engine::Table;
using sgb::engine::Value;

/// Scatters mobile devices into a few camps plus some wanderers between
/// them — the classic MANET layout of the paper's Figure 3.
std::shared_ptr<Table> MobileDevices() {
  auto devices = std::make_shared<Table>(Schema({
      Column{"mdid", DataType::kInt64, ""},
      Column{"device_lat", DataType::kDouble, ""},
      Column{"device_long", DataType::kDouble, ""},
  }));
  sgb::Rng rng(2024);
  int64_t id = 1;
  const double camps[][2] = {{10, 10}, {30, 12}, {22, 30}};
  for (const auto& camp : camps) {
    for (int i = 0; i < 12; ++i) {
      (void)devices->Append({Value::Int(id++),
                             Value::Double(rng.NextGaussian(camp[0], 1.2)),
                             Value::Double(rng.NextGaussian(camp[1], 1.2))});
    }
  }
  // Wanderers bridging camps 1 and 2.
  for (int i = 0; i < 4; ++i) {
    (void)devices->Append({Value::Int(id++),
                           Value::Double(14.0 + 4.0 * i),
                           Value::Double(10.0 + 0.5 * i)});
  }
  return devices;
}

}  // namespace

int main() {
  sgb::engine::Database db;
  db.Register("mobiledevices", MobileDevices());
  const double signal_range = 4.0;

  // Query 1: geographic areas that encompass a MANET.
  const std::string query1 =
      "SELECT group_id, count(*) AS devices, "
      "ST_Polygon(device_lat, device_long) AS area "
      "FROM MobileDevices "
      "GROUP BY device_lat, device_long "
      "DISTANCE-TO-ANY L2 WITHIN " + std::to_string(signal_range);
  auto manets = db.Query(query1);
  if (!manets.ok()) {
    std::fprintf(stderr, "%s\n", manets.status().ToString().c_str());
    return 1;
  }
  std::printf("Query 1 — connected MANETs and their coverage polygons:\n%s\n",
              manets.value().ToString().c_str());

  // Query 2: candidate gateway devices. Count the devices that FORM-NEW
  // pulled out of overlapping cliques: these sit between groups.
  const std::string query2 =
      "SELECT count(*) AS devices_in_group "
      "FROM MobileDevices "
      "GROUP BY device_lat, device_long "
      "DISTANCE-TO-ALL L2 WITHIN " + std::to_string(signal_range) +
      " ON-OVERLAP FORM-NEW-GROUP";
  auto gateways = db.Query(query2);
  if (!gateways.ok()) {
    std::fprintf(stderr, "%s\n", gateways.status().ToString().c_str());
    return 1;
  }
  std::printf("Query 2 — group sizes under FORM-NEW-GROUP "
              "(new groups hold the gateway candidates):\n%s\n",
              gateways.value().ToString().c_str());

  // The ELIMINATE flavour names the devices that can never serve as a
  // gateway (they are dropped): compare the two member lists.
  auto members = db.Query(
      "SELECT group_id, List_ID(mdid) AS members FROM MobileDevices "
      "GROUP BY device_lat, device_long "
      "DISTANCE-TO-ALL L2 WITHIN " + std::to_string(signal_range) +
      " ON-OVERLAP ELIMINATE");
  if (!members.ok()) {
    std::fprintf(stderr, "%s\n", members.status().ToString().c_str());
    return 1;
  }
  std::printf("ELIMINATE flavour — overlap devices dropped from groups:\n%s",
              members.value().ToString().c_str());
  return 0;
}
