// Spatiotemporal grouping — the 3-D extension in action.
//
// The paper scopes SGB to "two and three dimensional data space"; this
// example groups check-ins on (latitude, longitude, time-of-day): two
// crowds can share a location but happen hours apart, so 2-D grouping
// merges them while 3-D grouping keeps them separate.
//
// Build & run:  ./build/examples/spatiotemporal

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "core/sgb_nd.h"
#include "engine/executor.h"

namespace {

using sgb::engine::Column;
using sgb::engine::DataType;
using sgb::engine::Schema;
using sgb::engine::Table;
using sgb::engine::Value;

std::shared_ptr<Table> Checkins() {
  auto t = std::make_shared<Table>(Schema({
      Column{"lat", DataType::kDouble, ""},
      Column{"lon", DataType::kDouble, ""},
      Column{"hour", DataType::kDouble, ""},
  }));
  sgb::Rng rng(77);
  // Same plaza, two events: a morning market and an evening concert.
  const struct {
    double lat, lon, hour;
    int n;
  } crowds[] = {
      {40.0, -105.0, 9.0, 25},   // market
      {40.0, -105.0, 20.0, 25},  // concert, same place
      {40.3, -105.4, 20.0, 15},  // concert in the next town
  };
  for (const auto& crowd : crowds) {
    for (int i = 0; i < crowd.n; ++i) {
      (void)t->Append({Value::Double(rng.NextGaussian(crowd.lat, 0.01)),
                       Value::Double(rng.NextGaussian(crowd.lon, 0.01)),
                       Value::Double(rng.NextGaussian(crowd.hour, 0.4))});
    }
  }
  return t;
}

}  // namespace

int main() {
  sgb::engine::Database db;
  db.Register("checkins", Checkins());

  const auto spatial = db.Query(
      "SELECT count(*) AS checkins FROM checkins "
      "GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 0.1 "
      "ORDER BY checkins DESC");
  if (!spatial.ok()) {
    std::fprintf(stderr, "%s\n", spatial.status().ToString().c_str());
    return 1;
  }
  std::printf("2-D grouping (lat, lon): the two same-place events merge\n%s\n",
              spatial.value().ToString().c_str());

  // Time scaled so one 'hour' ~ one spatial unit of 0.02 degrees.
  const auto spatiotemporal = db.Query(
      "SELECT count(*) AS checkins, avg(hour) AS at_hour FROM checkins "
      "GROUP BY lat, lon, hour / 50 DISTANCE-TO-ANY L2 WITHIN 0.1 "
      "ORDER BY checkins DESC");
  if (!spatiotemporal.ok()) {
    std::fprintf(stderr, "%s\n",
                 spatiotemporal.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "3-D grouping (lat, lon, scaled hour): events stay separate\n%s\n",
      spatiotemporal.value().ToString().c_str());

  // The same grouping through the core N-D API.
  const auto table = Checkins();
  std::vector<sgb::geom::PointN<3>> pts;
  for (const auto& row : table->rows()) {
    pts.push_back(sgb::geom::PointN<3>{{row[0].AsDouble(), row[1].AsDouble(),
                                        row[2].AsDouble() / 50.0}});
  }
  sgb::core::SgbAnyOptions options;
  options.epsilon = 0.1;
  auto grouping = sgb::core::SgbAnyNd<3>(pts, options);
  if (!grouping.ok()) return 1;
  std::printf("core API: SgbAnyNd<3> found %zu spatiotemporal crowds\n",
              grouping.value().num_groups);
  return 0;
}
