// The companion similarity operators: ε-join, range search and kNN over
// the same R-tree substrate as SGB, plus the SQL formulation of an ε-join
// through the dist_l2() scalar function. Data flows in from CSV to show
// the loader path a downstream user would take.
//
// Build & run:  ./build/examples/similarity_search

#include <cstdio>

#include "core/similarity_join.h"
#include "engine/csv.h"
#include "engine/executor.h"

int main() {
  // A small fleet of charging stations and a batch of breakdowns (CSV, as
  // they would arrive from an external system).
  const char* kStationsCsv =
      "sid,sx,sy\n"
      "1,0.0,0.0\n"
      "2,4.0,0.5\n"
      "3,8.0,8.0\n";
  const char* kIncidentsCsv =
      "iid,ix,iy\n"
      "100,0.6,0.2\n"
      "200,3.8,1.1\n"
      "300,4.4,0.0\n"
      "400,20.0,20.0\n";

  auto stations = sgb::engine::ReadCsvFromString(kStationsCsv);
  auto incidents = sgb::engine::ReadCsvFromString(kIncidentsCsv);
  if (!stations.ok() || !incidents.ok()) return 1;

  // --- SQL: ε-join via the distance scalar ------------------------------
  sgb::engine::Database db;
  db.Register("stations", stations.value());
  db.Register("incidents", incidents.value());
  auto joined = db.Query(
      "SELECT sid, iid, dist_l2(sx, sy, ix, iy) AS km "
      "FROM stations, incidents "
      "WHERE dist_l2(sx, sy, ix, iy) <= 1.5 ORDER BY sid, iid");
  if (!joined.ok()) {
    std::fprintf(stderr, "%s\n", joined.status().ToString().c_str());
    return 1;
  }
  std::printf("SQL ε-join (stations within 1.5 of an incident):\n%s\n",
              joined.value().ToString().c_str());

  // --- Core API: the same join, index-accelerated ------------------------
  std::vector<sgb::geom::Point> station_pts;
  for (const auto& row : stations.value()->rows()) {
    station_pts.push_back({row[1].AsDouble(), row[2].AsDouble()});
  }
  std::vector<sgb::geom::Point> incident_pts;
  for (const auto& row : incidents.value()->rows()) {
    incident_pts.push_back({row[1].AsDouble(), row[2].AsDouble()});
  }
  auto pairs = sgb::core::SimilarityJoin(station_pts, incident_pts, 1.5);
  if (!pairs.ok()) return 1;
  std::printf("core ε-join pairs (station idx, incident idx):");
  for (const auto& p : pairs.value()) {
    std::printf(" (%zu,%zu)", p.left, p.right);
  }
  std::printf("\n\n");

  // --- Range search and kNN ----------------------------------------------
  const sgb::core::SimilaritySearch search(incident_pts);
  const sgb::geom::Point here{4.0, 0.5};
  const auto nearby = search.RangeQuery(here, 2.0);
  std::printf("incidents within 2.0 of station 2:");
  for (const size_t i : nearby) {
    std::printf(" #%lld",
                static_cast<long long>(
                    incidents.value()->rows()[i][0].AsInt()));
  }
  const auto nearest = search.Knn(here, 2);
  std::printf("\n2 nearest incidents to station 2:");
  for (const size_t i : nearest) {
    std::printf(" #%lld",
                static_cast<long long>(
                    incidents.value()->rows()[i][0].AsInt()));
  }
  std::printf("\n");
  return 0;
}
