// Quickstart: the two public entry points of the sgb library.
//
//  1. The core API — call the similarity group-by operators directly on
//     2-D points (core::SgbAll / core::SgbAny).
//  2. The SQL API — register tables in an engine::Database and run the
//     paper's extended GROUP BY syntax.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/sgb_all.h"
#include "core/sgb_any.h"
#include "engine/executor.h"

int main() {
  // --- 1. Core API --------------------------------------------------------
  // The five points of the paper's Figure 2, arriving a1..a5.
  const std::vector<sgb::geom::Point> points = {
      {3, 6}, {4, 7}, {8, 6}, {9, 7}, {6, 6.5}};

  sgb::core::SgbAllOptions all_options;
  all_options.epsilon = 3.0;
  all_options.metric = sgb::geom::Metric::kLInf;
  all_options.on_overlap = sgb::core::OverlapClause::kFormNewGroup;

  auto all = sgb::core::SgbAll(points, all_options);
  if (!all.ok()) {
    std::fprintf(stderr, "SGB-All failed: %s\n",
                 all.status().ToString().c_str());
    return 1;
  }
  std::printf("SGB-All (FORM-NEW-GROUP) found %zu groups, sizes:",
              all.value().num_groups);
  for (const size_t size : all.value().GroupSizes()) {
    std::printf(" %zu", size);
  }
  std::printf("   (the paper's Example 1 answer: {2, 2, 1})\n");

  sgb::core::SgbAnyOptions any_options;
  any_options.epsilon = 3.0;
  any_options.metric = sgb::geom::Metric::kLInf;
  auto any = sgb::core::SgbAny(points, any_options);
  if (!any.ok()) return 1;
  std::printf("SGB-Any found %zu group(s) of %zu points"
              "   (Example 2 answer: {5})\n",
              any.value().num_groups, any.value().GroupSizes()[0]);

  // --- 2. SQL API ---------------------------------------------------------
  using sgb::engine::Column;
  using sgb::engine::DataType;
  using sgb::engine::Schema;
  using sgb::engine::Table;
  using sgb::engine::Value;

  auto gps = std::make_shared<Table>(Schema({
      Column{"lat", DataType::kDouble, ""},
      Column{"lon", DataType::kDouble, ""},
  }));
  for (const auto& p : points) {
    if (!gps->Append({Value::Double(p.x), Value::Double(p.y)}).ok()) return 1;
  }

  sgb::engine::Database db;
  db.Register("gpspoints", gps);
  const auto result = db.Query(
      "SELECT group_id, count(*) FROM gpspoints "
      "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 "
      "ON-OVERLAP ELIMINATE");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSQL: SELECT group_id, count(*) ... ON-OVERLAP ELIMINATE\n%s",
              result.value().ToString().c_str());
  return 0;
}
