// Location-based group recommendation (paper Section 5, Example 4,
// Query 3): form private location-based user groups from check-in data.
//
// SGB-All groups users whose frequent locations are pairwise within a
// threshold; the ON-OVERLAP clause decides what happens to users who
// match several groups (privacy: JOIN-ANY assigns them to one group,
// ELIMINATE drops them from recommendations, FORM-NEW-GROUP gives them a
// dedicated group).
//
// Build & run:  ./build/examples/checkin_groups

#include <cstdio>

#include "engine/executor.h"
#include "workload/checkin.h"

int main() {
  // Synthetic check-ins standing in for the Brightkite data (DESIGN.md).
  auto config = sgb::workload::BrightkiteLike(400, /*seed=*/5);
  config.num_hotspots = 6;
  config.hotspot_stddev = 0.08;
  config.background_fraction = 0.02;

  sgb::engine::Database db;
  db.Register("users_frequent_location",
              sgb::workload::GenerateCheckinTable(config, /*users=*/400));

  const char* kThreshold = "0.4";
  for (const char* overlap : {"JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"}) {
    const std::string query =
        std::string("SELECT group_id, count(*) AS members, "
                    "ST_Polygon(latitude, longitude) AS area "
                    "FROM users_frequent_location "
                    "GROUP BY latitude, longitude DISTANCE-TO-ALL L2 "
                    "WITHIN ") + kThreshold + " ON-OVERLAP " + overlap +
        " ORDER BY members DESC LIMIT 5";
    auto result = db.Query(query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("Query 3 with ON-OVERLAP %s — top groups:\n%s\n", overlap,
                result.value().ToString(5).c_str());
  }

  // The List-ID aggregate from the paper returns each group's user ids.
  auto ids = db.Query(
      std::string("SELECT group_id, List_ID(user_id) AS user_ids "
                  "FROM users_frequent_location "
                  "GROUP BY latitude, longitude DISTANCE-TO-ALL L2 WITHIN ") +
      kThreshold + " ON-OVERLAP JOIN-ANY LIMIT 3");
  if (!ids.ok()) {
    std::fprintf(stderr, "%s\n", ids.status().ToString().c_str());
    return 1;
  }
  std::printf("Member lists (List-ID):\n%s", ids.value().ToString(3).c_str());
  return 0;
}
