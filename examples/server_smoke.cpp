// Server front-end smoke driver (docs/SERVER.md, README "Quick start"):
// boots the multi-session server on a unix socket inside this process,
// connects two wire clients, and walks the whole protocol surface —
// PING, DDL + INSERT, a similarity-group-by over the wire, per-session
// SET isolation, prepared statements, and the system.sessions view.
//
// Usage: server_smoke [unix-socket-path]   (default: /tmp/sgb_smoke.sock)
//
// Exits non-zero on the first unexpected outcome; the CI qps-smoke job
// runs it before the bench_qps gauntlet.

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/random.h"
#include "engine/executor.h"
#include "server/client.h"
#include "server/server.h"

using sgb::Rng;
using sgb::engine::Column;
using sgb::engine::Database;
using sgb::engine::DataType;
using sgb::engine::Schema;
using sgb::engine::Table;
using sgb::engine::Value;
using sgb::server::Client;
using sgb::server::QueryResult;
using sgb::server::Server;
using sgb::server::ServerOptions;

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "server_smoke: FAILED: %s\n", what.c_str());
  return 1;
}

void PrintResult(const char* title, const QueryResult& result,
                 size_t max_rows = 5) {
  std::printf("-- %s\n", title);
  for (size_t c = 0; c < result.columns.size(); ++c) {
    std::printf("%s%s", c ? "\t" : "", result.columns[c].c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < result.rows.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < result.rows[r].size(); ++c) {
      std::printf("%s%s", c ? "\t" : "", result.rows[r][c].c_str());
    }
    std::printf("\n");
  }
  if (result.rows.size() > max_rows) {
    std::printf("... (%zu rows total)\n", result.rows.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string socket_path =
      argc > 1 ? argv[1]
               : "/tmp/sgb_smoke_" + std::to_string(::getpid()) + ".sock";

  // An embedded Database with some clustered 2-D points to group.
  Database db;
  auto pts = std::make_shared<Table>(Schema({
      Column{"x", DataType::kDouble, ""},
      Column{"y", DataType::kDouble, ""},
  }));
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    (void)pts->Append({Value::Double(rng.NextUniform(0, 10)),
                       Value::Double(rng.NextUniform(0, 10))});
  }
  db.Register("pts", pts);

  ServerOptions options;
  options.unix_path = socket_path;
  Server server(&db, options);
  if (auto status = server.Start(); !status.ok()) {
    return Fail("server start: " + status.ToString());
  }
  std::printf("server listening on %s\n", socket_path.c_str());

  auto c1 = Client::ConnectUnixSocket(socket_path);
  auto c2 = Client::ConnectUnixSocket(socket_path);
  if (!c1.ok() || !c2.ok()) return Fail("client connect");
  if (!c1.value().Ping().ok()) return Fail("ping");

  // Session 1 creates an append-only table and loads it over the wire.
  if (!c1.value()
           .Query("CREATE TABLE cities (name TEXT, pop INT)")
           .ok()) {
    return Fail("create table");
  }
  if (!c1.value()
           .Query("INSERT INTO cities VALUES ('quito', 2011), "
                  "('oslo', 709), ('lyon', 522)")
           .ok()) {
    return Fail("insert");
  }

  // Session 2 reads the committed rows through its own snapshot.
  auto cities = c2.value().Query(
      "SELECT name, pop FROM cities ORDER BY pop DESC");
  if (!cities.ok()) return Fail("select: " + cities.status().ToString());
  PrintResult("cities by population", cities.value());

  // A similarity group-by (the paper's operator) over the wire.
  auto sgb = c2.value().Query(
      "SELECT count(*) FROM pts GROUP BY x, y "
      "DISTANCE-TO-ANY L2 WITHIN 0.4");
  if (!sgb.ok()) return Fail("sgb: " + sgb.status().ToString());
  PrintResult("similarity groups over the wire", sgb.value());

  // SET is session-scoped: c1's timeout never leaks into c2.
  if (!c1.value().Query("SET timeout = 1234").ok()) return Fail("set");
  auto sessions = c2.value().Query(
      "SELECT id, peer, timeout_ms, queries FROM system.sessions");
  if (!sessions.ok()) return Fail("system.sessions");
  PrintResult("system.sessions", sessions.value());

  // Prepared statements live on the session that PREPAREd them.
  if (!c2.value().Prepare("grp", "SELECT count(*) FROM cities").ok()) {
    return Fail("prepare");
  }
  auto prepped = c2.value().Execute("grp");
  if (!prepped.ok() || prepped.value().rows[0][0] != "3") {
    return Fail("execute prepared");
  }
  if (c1.value().Execute("grp").ok()) {
    return Fail("prepared statement leaked across sessions");
  }

  (void)c1.value().Quit();
  (void)c2.value().Quit();
  server.Stop();
  std::printf("server_smoke: OK\n");
  return 0;
}
