// TPC-H analytics example: the paper's Table 2 business questions run
// end-to-end — equality GROUP BY next to its similarity variants — over
// the micro TPC-H generator.
//
// Build & run:  ./build/examples/tpch_analytics

#include <cstdio>

#include "engine/executor.h"
#include "workload/queries.h"
#include "workload/tpch.h"

int main() {
  sgb::workload::TpchConfig config;
  config.scale_factor = 0.25;
  sgb::engine::Database db;
  sgb::workload::GenerateTpch(config).RegisterAll(db.catalog());

  struct Entry {
    const char* label;
    std::string sql;
  };
  using sgb::core::OverlapClause;
  using sgb::geom::Metric;
  const Entry entries[] = {
      {"GB1  (equality GROUP BY, buying power)", sgb::workload::Gb1()},
      {"SGB1 (DISTANCE-TO-ALL, ON-OVERLAP JOIN-ANY)",
       sgb::workload::Sgb1(0.2, Metric::kL2, OverlapClause::kJoinAny)},
      {"SGB2 (DISTANCE-TO-ANY)", sgb::workload::Sgb2(0.2, Metric::kL2)},
      {"GB2  (equality GROUP BY, parts profit)", sgb::workload::Gb2()},
      {"SGB3 (DISTANCE-TO-ALL, ON-OVERLAP ELIMINATE)",
       sgb::workload::Sgb3(0.3, Metric::kL2, OverlapClause::kEliminate)},
      {"SGB4 (DISTANCE-TO-ANY)", sgb::workload::Sgb4(0.3, Metric::kL2)},
      {"GB3  (equality GROUP BY, top supplier)", sgb::workload::Gb3()},
      {"SGB5 (DISTANCE-TO-ALL, ON-OVERLAP FORM-NEW-GROUP)",
       sgb::workload::Sgb5(0.2, Metric::kLInf,
                           OverlapClause::kFormNewGroup)},
      {"SGB6 (DISTANCE-TO-ANY)", sgb::workload::Sgb6(0.2, Metric::kLInf)},
  };

  for (const Entry& entry : entries) {
    auto result = db.Query(entry.sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", entry.label,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-52s -> %4zu group(s)\n", entry.label,
                result.value().NumRows());
  }

  // Show one similarity result in full: customers with similar buying
  // power, including the member-id lists the paper's SGB1 selects.
  auto detail = db.Query(sgb::workload::Sgb1(
      0.3, sgb::geom::Metric::kL2, sgb::core::OverlapClause::kJoinAny));
  if (!detail.ok()) return 1;
  std::printf("\nSGB1 detail (first rows):\n%s",
              detail.value().ToString(5).c_str());
  return 0;
}
