# Empty dependencies file for sgb.
# This may be replaced when dependencies are built.
