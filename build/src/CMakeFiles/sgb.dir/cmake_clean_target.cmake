file(REMOVE_RECURSE
  "libsgb.a"
)
