
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/birch.cc" "src/CMakeFiles/sgb.dir/cluster/birch.cc.o" "gcc" "src/CMakeFiles/sgb.dir/cluster/birch.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/sgb.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/sgb.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/sgb.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/sgb.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/sgb.dir/common/random.cc.o" "gcc" "src/CMakeFiles/sgb.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sgb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sgb.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/sgb.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/sgb.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/core/sgb1d.cc" "src/CMakeFiles/sgb.dir/core/sgb1d.cc.o" "gcc" "src/CMakeFiles/sgb.dir/core/sgb1d.cc.o.d"
  "/root/repo/src/core/sgb_all.cc" "src/CMakeFiles/sgb.dir/core/sgb_all.cc.o" "gcc" "src/CMakeFiles/sgb.dir/core/sgb_all.cc.o.d"
  "/root/repo/src/core/sgb_any.cc" "src/CMakeFiles/sgb.dir/core/sgb_any.cc.o" "gcc" "src/CMakeFiles/sgb.dir/core/sgb_any.cc.o.d"
  "/root/repo/src/core/sgb_types.cc" "src/CMakeFiles/sgb.dir/core/sgb_types.cc.o" "gcc" "src/CMakeFiles/sgb.dir/core/sgb_types.cc.o.d"
  "/root/repo/src/core/similarity_join.cc" "src/CMakeFiles/sgb.dir/core/similarity_join.cc.o" "gcc" "src/CMakeFiles/sgb.dir/core/similarity_join.cc.o.d"
  "/root/repo/src/engine/aggregate.cc" "src/CMakeFiles/sgb.dir/engine/aggregate.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/aggregate.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/CMakeFiles/sgb.dir/engine/catalog.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/catalog.cc.o.d"
  "/root/repo/src/engine/csv.cc" "src/CMakeFiles/sgb.dir/engine/csv.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/csv.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/sgb.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/expression.cc" "src/CMakeFiles/sgb.dir/engine/expression.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/expression.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/CMakeFiles/sgb.dir/engine/operators.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/operators.cc.o.d"
  "/root/repo/src/engine/schema.cc" "src/CMakeFiles/sgb.dir/engine/schema.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/schema.cc.o.d"
  "/root/repo/src/engine/sgb_operator.cc" "src/CMakeFiles/sgb.dir/engine/sgb_operator.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/sgb_operator.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/sgb.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/table.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/CMakeFiles/sgb.dir/engine/value.cc.o" "gcc" "src/CMakeFiles/sgb.dir/engine/value.cc.o.d"
  "/root/repo/src/geom/convex_hull.cc" "src/CMakeFiles/sgb.dir/geom/convex_hull.cc.o" "gcc" "src/CMakeFiles/sgb.dir/geom/convex_hull.cc.o.d"
  "/root/repo/src/geom/epsilon_rect.cc" "src/CMakeFiles/sgb.dir/geom/epsilon_rect.cc.o" "gcc" "src/CMakeFiles/sgb.dir/geom/epsilon_rect.cc.o.d"
  "/root/repo/src/index/grid_index.cc" "src/CMakeFiles/sgb.dir/index/grid_index.cc.o" "gcc" "src/CMakeFiles/sgb.dir/index/grid_index.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/sgb.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/sgb.dir/index/rtree.cc.o.d"
  "/root/repo/src/index/union_find.cc" "src/CMakeFiles/sgb.dir/index/union_find.cc.o" "gcc" "src/CMakeFiles/sgb.dir/index/union_find.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/sgb.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/sgb.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/sgb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/sgb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/sgb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/sgb.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/CMakeFiles/sgb.dir/sql/planner.cc.o" "gcc" "src/CMakeFiles/sgb.dir/sql/planner.cc.o.d"
  "/root/repo/src/workload/checkin.cc" "src/CMakeFiles/sgb.dir/workload/checkin.cc.o" "gcc" "src/CMakeFiles/sgb.dir/workload/checkin.cc.o.d"
  "/root/repo/src/workload/distributions.cc" "src/CMakeFiles/sgb.dir/workload/distributions.cc.o" "gcc" "src/CMakeFiles/sgb.dir/workload/distributions.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/sgb.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/sgb.dir/workload/queries.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/sgb.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/sgb.dir/workload/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
