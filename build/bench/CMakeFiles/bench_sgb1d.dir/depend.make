# Empty dependencies file for bench_sgb1d.
# This may be replaced when dependencies are built.
