file(REMOVE_RECURSE
  "CMakeFiles/bench_sgb1d.dir/bench_sgb1d.cc.o"
  "CMakeFiles/bench_sgb1d.dir/bench_sgb1d.cc.o.d"
  "bench_sgb1d"
  "bench_sgb1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sgb1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
