# Empty compiler generated dependencies file for bench_nd.
# This may be replaced when dependencies are built.
