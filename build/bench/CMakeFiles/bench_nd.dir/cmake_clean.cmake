file(REMOVE_RECURSE
  "CMakeFiles/bench_nd.dir/bench_nd.cc.o"
  "CMakeFiles/bench_nd.dir/bench_nd.cc.o.d"
  "bench_nd"
  "bench_nd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
