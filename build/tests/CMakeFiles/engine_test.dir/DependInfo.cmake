
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/aggregate_test.cc" "tests/CMakeFiles/engine_test.dir/engine/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/aggregate_test.cc.o.d"
  "/root/repo/tests/engine/csv_test.cc" "tests/CMakeFiles/engine_test.dir/engine/csv_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/csv_test.cc.o.d"
  "/root/repo/tests/engine/executor_test.cc" "tests/CMakeFiles/engine_test.dir/engine/executor_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/executor_test.cc.o.d"
  "/root/repo/tests/engine/expression_test.cc" "tests/CMakeFiles/engine_test.dir/engine/expression_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/expression_test.cc.o.d"
  "/root/repo/tests/engine/operators_test.cc" "tests/CMakeFiles/engine_test.dir/engine/operators_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/operators_test.cc.o.d"
  "/root/repo/tests/engine/schema_test.cc" "tests/CMakeFiles/engine_test.dir/engine/schema_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/schema_test.cc.o.d"
  "/root/repo/tests/engine/sgb_operator_test.cc" "tests/CMakeFiles/engine_test.dir/engine/sgb_operator_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/sgb_operator_test.cc.o.d"
  "/root/repo/tests/engine/value_test.cc" "tests/CMakeFiles/engine_test.dir/engine/value_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
