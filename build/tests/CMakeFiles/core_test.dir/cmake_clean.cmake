file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/sgb1d_test.cc.o"
  "CMakeFiles/core_test.dir/core/sgb1d_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sgb_all_test.cc.o"
  "CMakeFiles/core_test.dir/core/sgb_all_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sgb_any_test.cc.o"
  "CMakeFiles/core_test.dir/core/sgb_any_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sgb_nd_test.cc.o"
  "CMakeFiles/core_test.dir/core/sgb_nd_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sgb_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/sgb_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sgb_semantics_test.cc.o"
  "CMakeFiles/core_test.dir/core/sgb_semantics_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sgb_stress_test.cc.o"
  "CMakeFiles/core_test.dir/core/sgb_stress_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/similarity_join_test.cc.o"
  "CMakeFiles/core_test.dir/core/similarity_join_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
