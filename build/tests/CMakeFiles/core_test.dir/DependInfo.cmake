
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/sgb1d_test.cc" "tests/CMakeFiles/core_test.dir/core/sgb1d_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sgb1d_test.cc.o.d"
  "/root/repo/tests/core/sgb_all_test.cc" "tests/CMakeFiles/core_test.dir/core/sgb_all_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sgb_all_test.cc.o.d"
  "/root/repo/tests/core/sgb_any_test.cc" "tests/CMakeFiles/core_test.dir/core/sgb_any_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sgb_any_test.cc.o.d"
  "/root/repo/tests/core/sgb_nd_test.cc" "tests/CMakeFiles/core_test.dir/core/sgb_nd_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sgb_nd_test.cc.o.d"
  "/root/repo/tests/core/sgb_property_test.cc" "tests/CMakeFiles/core_test.dir/core/sgb_property_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sgb_property_test.cc.o.d"
  "/root/repo/tests/core/sgb_semantics_test.cc" "tests/CMakeFiles/core_test.dir/core/sgb_semantics_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sgb_semantics_test.cc.o.d"
  "/root/repo/tests/core/sgb_stress_test.cc" "tests/CMakeFiles/core_test.dir/core/sgb_stress_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sgb_stress_test.cc.o.d"
  "/root/repo/tests/core/similarity_join_test.cc" "tests/CMakeFiles/core_test.dir/core/similarity_join_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/similarity_join_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
