
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql/end_to_end_test.cc" "tests/CMakeFiles/sql_test.dir/sql/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/end_to_end_test.cc.o.d"
  "/root/repo/tests/sql/explain_test.cc" "tests/CMakeFiles/sql_test.dir/sql/explain_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/explain_test.cc.o.d"
  "/root/repo/tests/sql/lexer_test.cc" "tests/CMakeFiles/sql_test.dir/sql/lexer_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/lexer_test.cc.o.d"
  "/root/repo/tests/sql/parser_test.cc" "tests/CMakeFiles/sql_test.dir/sql/parser_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/parser_test.cc.o.d"
  "/root/repo/tests/sql/planner_test.cc" "tests/CMakeFiles/sql_test.dir/sql/planner_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/planner_test.cc.o.d"
  "/root/repo/tests/sql/sql_features_test.cc" "tests/CMakeFiles/sql_test.dir/sql/sql_features_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/sql_features_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
