# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
