file(REMOVE_RECURSE
  "CMakeFiles/checkin_groups.dir/checkin_groups.cpp.o"
  "CMakeFiles/checkin_groups.dir/checkin_groups.cpp.o.d"
  "checkin_groups"
  "checkin_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkin_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
