# Empty dependencies file for checkin_groups.
# This may be replaced when dependencies are built.
