# Empty dependencies file for spatiotemporal.
# This may be replaced when dependencies are built.
