# Empty compiler generated dependencies file for spatiotemporal.
# This may be replaced when dependencies are built.
