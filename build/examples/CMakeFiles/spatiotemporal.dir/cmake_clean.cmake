file(REMOVE_RECURSE
  "CMakeFiles/spatiotemporal.dir/spatiotemporal.cpp.o"
  "CMakeFiles/spatiotemporal.dir/spatiotemporal.cpp.o.d"
  "spatiotemporal"
  "spatiotemporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatiotemporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
