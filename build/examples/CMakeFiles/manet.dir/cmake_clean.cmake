file(REMOVE_RECURSE
  "CMakeFiles/manet.dir/manet.cpp.o"
  "CMakeFiles/manet.dir/manet.cpp.o.d"
  "manet"
  "manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
